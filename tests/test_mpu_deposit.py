"""Tests for the MPU outer-product deposition mapping (§4.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mpu_deposit import (
    build_cic_operands,
    build_qsp_operands,
    deposit_cell_cic_mpu,
    deposit_cell_qsp_mpu,
    pair_within_runs,
)
from repro.core.rhocell import RhocellBuffer
from repro.hardware.mpu import MatrixUnit
from repro.pic.shapes import shape_factors


def reference_cell_contrib(wx, wy, wz, wq):
    """Scalar reference: sum over particles of wq * sx_i * sy_j * sz_k."""
    wx, wy, wz = np.atleast_2d(wx), np.atleast_2d(wy), np.atleast_2d(wz)
    wq = np.atleast_1d(wq)
    support = wx.shape[1]
    out = np.zeros(support**3)
    for p in range(wx.shape[0]):
        tensor = wq[p] * np.einsum("i,j,k->ijk", wx[p], wy[p], wz[p])
        out += tensor.reshape(-1)
    return out


def random_shape_factors(n, order, seed=0):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, 1.0, n)
    _, w = shape_factors(positions, order)
    return w


class TestPairing:
    def test_empty(self):
        first, second, valid2, cells, runs = pair_within_runs(np.array([], dtype=int))
        assert first.size == 0 and runs == 0

    def test_sorted_sequence_pairs_within_cells(self):
        cells = np.array([0, 0, 0, 1, 1, 2])
        first, second, valid2, pair_cell, runs = pair_within_runs(cells)
        assert runs == 3
        np.testing.assert_array_equal(first, [0, 2, 3, 5])
        np.testing.assert_array_equal(second, [1, -1, 4, -1])
        np.testing.assert_array_equal(valid2, [True, False, True, False])
        np.testing.assert_array_equal(pair_cell, [0, 0, 1, 2])

    def test_unsorted_sequence_creates_many_runs(self):
        cells = np.array([0, 1, 0, 1, 0, 1])
        *_, runs = pair_within_runs(cells)
        assert runs == 6

    def test_every_particle_appears_exactly_once(self):
        rng = np.random.default_rng(1)
        cells = np.sort(rng.integers(0, 5, 37))
        first, second, valid2, _, _ = pair_within_runs(cells)
        covered = np.concatenate([first, second[valid2]])
        assert np.sort(covered).tolist() == list(range(37))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=50))
    def test_pairing_property(self, cells):
        cells = np.asarray(cells)
        first, second, valid2, pair_cell, runs = pair_within_runs(cells)
        covered = np.concatenate([first, second[valid2]])
        assert np.sort(covered).tolist() == list(range(len(cells)))
        # paired particles always share a cell
        np.testing.assert_array_equal(cells[first[valid2]],
                                      cells[second[valid2]])
        assert runs >= len(np.unique(cells))


class TestOperands:
    def test_cic_operand_lengths(self):
        a, b = build_cic_operands(np.ones((2, 2)), np.ones((2, 2)),
                                  np.ones((2, 2)), np.ones(2))
        assert a.shape == (4,)
        assert b.shape == (8,)

    def test_qsp_operand_lengths(self):
        a, b = build_qsp_operands(np.ones((2, 4)), np.ones((2, 4)), np.ones(2))
        assert a.shape == (8,)
        assert b.shape == (8,)

    def test_cic_outer_product_contains_both_particles(self):
        wx = random_shape_factors(2, 1, seed=3)
        wy = random_shape_factors(2, 1, seed=4)
        wz = random_shape_factors(2, 1, seed=5)
        wq = np.array([2.0, -1.5])
        a, b = build_cic_operands(wx, wy, wz, wq)
        tile = np.outer(a, b)
        # particle 1's block
        expected_p1 = wq[0] * np.einsum("i,j,k->ijk", wx[0], wy[0], wz[0])
        block1 = tile[0:2, 0:4]
        assert block1[0, 0] == pytest.approx(expected_p1[0, 0, 0])
        assert block1[1, 3] == pytest.approx(expected_p1[1, 1, 1])
        # particle 2's block
        expected_p2 = wq[1] * np.einsum("i,j,k->ijk", wx[1], wy[1], wz[1])
        block2 = tile[2:4, 4:8]
        assert block2[0, 0] == pytest.approx(expected_p2[0, 0, 0])


class TestPerCellMPU:
    @pytest.mark.parametrize("n_particles", [1, 2, 3, 8, 13])
    def test_cic_cell_matches_reference(self, n_particles):
        wx = random_shape_factors(n_particles, 1, seed=10)
        wy = random_shape_factors(n_particles, 1, seed=11)
        wz = random_shape_factors(n_particles, 1, seed=12)
        wq = np.random.default_rng(13).normal(size=n_particles)
        mpu = MatrixUnit()
        contrib = deposit_cell_cic_mpu(mpu, wx, wy, wz, wq)
        np.testing.assert_allclose(contrib,
                                   reference_cell_contrib(wx, wy, wz, wq),
                                   rtol=1e-12, atol=1e-14)

    def test_cic_mopa_count_is_half_particle_count(self):
        n = 10
        mpu = MatrixUnit()
        deposit_cell_cic_mpu(mpu, random_shape_factors(n, 1),
                             random_shape_factors(n, 1, 1),
                             random_shape_factors(n, 1, 2), np.ones(n))
        assert mpu.counters.mpu_mopa == 5.0
        # the tile stays resident: one zero + one read
        assert mpu.counters.mpu_tile_moves == 2.0

    @pytest.mark.parametrize("n_particles", [1, 2, 5])
    def test_qsp_cell_matches_reference(self, n_particles):
        wx = random_shape_factors(n_particles, 3, seed=20)
        wy = random_shape_factors(n_particles, 3, seed=21)
        wz = random_shape_factors(n_particles, 3, seed=22)
        wq = np.random.default_rng(23).normal(size=n_particles)
        mpu = MatrixUnit()
        contrib = deposit_cell_qsp_mpu(mpu, wx, wy, wz, wq)
        np.testing.assert_allclose(contrib,
                                   reference_cell_contrib(wx, wy, wz, wq),
                                   rtol=1e-12, atol=1e-14)

    def test_qsp_uses_one_mopa_per_pair(self):
        n = 6
        mpu = MatrixUnit()
        deposit_cell_qsp_mpu(mpu, random_shape_factors(n, 3),
                             random_shape_factors(n, 3, 1),
                             random_shape_factors(n, 3, 2), np.ones(n))
        assert mpu.counters.mpu_mopa == 3.0


class TestRhocellBuffer:
    def test_accumulate_and_reduce_shapes(self):
        buf = RhocellBuffer(num_cells=4, order=1)
        assert buf.jx.shape == (4, 8)
        buf.accumulate(np.array([1, 1]), np.ones((2, 8)), np.zeros((2, 8)),
                       np.zeros((2, 8)))
        assert buf.jx[1].sum() == pytest.approx(16.0)
        np.testing.assert_array_equal(buf.occupied_cells(), [1])

    def test_accumulate_cell(self):
        buf = RhocellBuffer(num_cells=2, order=1)
        buf.accumulate_cell(0, np.ones(8), np.ones(8), np.ones(8))
        assert buf.jy[0].sum() == pytest.approx(8.0)
        with pytest.raises(IndexError):
            buf.accumulate_cell(5, np.ones(8), np.ones(8), np.ones(8))

    def test_shape_mismatch_rejected(self):
        buf = RhocellBuffer(num_cells=2, order=1)
        with pytest.raises(ValueError):
            buf.accumulate(np.array([0]), np.ones((1, 4)), np.ones((1, 4)),
                           np.ones((1, 4)))

    def test_order2_rejected(self):
        with pytest.raises(ValueError):
            RhocellBuffer(num_cells=2, order=2)

    def test_zero(self):
        buf = RhocellBuffer(num_cells=2, order=3)
        buf.jx[:] = 1.0
        buf.zero()
        assert np.all(buf.jx == 0.0)

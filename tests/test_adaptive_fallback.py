"""Tests for the density-adaptive VPU fallback (paper §6.1 recommendation).

The paper recommends falling back to an optimised VPU (or scalar) kernel in
regions whose particle density is below roughly 8 particles per cell,
because the MPU framework's overheads are not amortised there.  The
framework implements this as an optional per-tile kernel selection.
"""

import numpy as np
import pytest

from repro.core.framework import MatrixPICDeposition
from repro.pic.deposition.reference import deposit_reference
from repro.pic.deposition.rhocell import RhocellDeposition
from repro.pic.diagnostics import current_residual
from repro.pic.grid import Grid

from helpers import make_plasma


def test_fallback_threshold_validation():
    with pytest.raises(ValueError):
        MatrixPICDeposition(vpu_fallback_ppc=-1.0)


def test_fallback_disabled_by_default(tiled_grid_config):
    grid, container = make_plasma(tiled_grid_config, ppc=(1, 1, 1))
    strategy = MatrixPICDeposition()
    strategy.run_step(grid, container, 1, 0)
    assert strategy.fallback_tiles == 0


def test_sparse_tiles_use_vpu_fallback(tiled_grid_config):
    grid, container = make_plasma(tiled_grid_config, ppc=(1, 1, 1))
    strategy = MatrixPICDeposition(vpu_fallback_ppc=8.0)
    counters = strategy.run_step(grid, container, 1, 0)
    # at 1 particle per cell every tile is below the threshold
    assert strategy.fallback_tiles == len(container.nonempty_tiles())
    assert isinstance(strategy.fallback_kernel, RhocellDeposition)
    # the fallback path issues no MOPA instructions
    assert counters.phase("compute").mpu_mopa == 0.0


def test_dense_tiles_keep_mpu_kernel(tiled_grid_config):
    grid, container = make_plasma(tiled_grid_config, ppc=(3, 3, 3))
    strategy = MatrixPICDeposition(vpu_fallback_ppc=8.0)
    counters = strategy.run_step(grid, container, 1, 0)
    assert strategy.fallback_tiles == 0
    assert counters.phase("compute").mpu_mopa > 0.0


def test_fallback_result_matches_reference(tiled_grid_config):
    grid, container = make_plasma(tiled_grid_config, ppc=(1, 1, 1))
    reference = Grid(tiled_grid_config)
    deposit_reference(reference, container, 1)
    strategy = MatrixPICDeposition(vpu_fallback_ppc=8.0)
    strategy.run_step(grid, container, 1, 0)
    scale = np.max(np.abs(reference.jx)) or 1.0
    assert current_residual(grid, reference) / scale < 1e-12


def test_custom_fallback_kernel(tiled_grid_config):
    grid, container = make_plasma(tiled_grid_config, ppc=(1, 1, 1))
    custom = RhocellDeposition(hand_tuned=False)
    strategy = MatrixPICDeposition(vpu_fallback_ppc=100.0,
                                   fallback_kernel=custom)
    strategy.run_step(grid, container, 1, 0)
    assert strategy.fallback_kernel is custom
    assert strategy.fallback_tiles > 0

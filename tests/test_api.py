"""The public :class:`repro.api.Session` facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session, StepResult
from repro.config import ExecutionConfig
from repro.pic.simulation import Simulation
from repro.workloads.uniform import UniformPlasmaWorkload

ALL_COMPONENTS = ("ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho")


def workload(**kwargs):
    defaults = dict(n_cell=(8, 8, 8), tile_size=(4, 4, 4), ppc=8,
                    max_steps=3)
    defaults.update(kwargs)
    return UniformPlasmaWorkload(**defaults)


class TestConstruction:
    def test_from_config(self):
        session = Session(workload().build_config())
        assert isinstance(session.simulation, Simulation)
        assert session.num_particles == 8 * 8 * 8 * 8

    def test_from_workload_and_build_session_agree(self):
        a = Session.from_workload(workload())
        b = workload().build_session()
        assert type(a.simulation) is type(b.simulation)
        assert a.config == b.config

    def test_from_simulation_wraps_without_copy(self):
        simulation = workload().build_simulation()
        session = Session.from_simulation(simulation)
        assert session.simulation is simulation
        assert session.pipeline is simulation.pipeline
        assert session.grid is simulation.grid

    def test_properties_passthrough(self):
        session = workload().build_session()
        sim = session.simulation
        assert session.containers is sim.containers
        assert session.breakdown is sim.breakdown
        assert session.energy is sim.energy
        assert session.step_index == 0
        assert session.time == 0.0


class TestRunIterator:
    def test_yields_one_result_per_step(self):
        session = workload().build_session()
        results = list(session.run(3))
        assert [r.step for r in results] == [1, 2, 3]
        assert session.step_index == 3
        dt = session.simulation.dt
        for result in results:
            assert isinstance(result, StepResult)
            assert result.time == pytest.approx(result.step * dt)
            assert result.energy is None

    def test_defaults_to_configured_max_steps(self):
        session = workload(max_steps=2).build_session()
        assert len(list(session.run())) == 2

    def test_generator_is_lazy(self):
        session = workload().build_session()
        iterator = session.run(3)
        assert session.step_index == 0
        next(iterator)
        assert session.step_index == 1

    def test_early_exit_stops_stepping(self):
        session = workload().build_session()
        for result in session.run(3):
            if result.step == 1:
                break
        assert session.step_index == 1

    def test_record_energy_populates_results_and_history(self):
        session = workload().build_session()
        results = list(session.run(2, record_energy=True))
        # one initial snapshot + one per step, like Simulation.run
        assert len(session.energy.history) == 3
        assert all(r.energy is not None for r in results)
        assert results[-1].energy is session.energy.history[-1]

    def test_run_all_returns_breakdown(self):
        session = workload().build_session()
        breakdown = session.run_all(2)
        assert breakdown is session.breakdown
        assert breakdown.steps == 2
        assert breakdown.stage_seconds

    def test_single_step(self):
        session = workload().build_session()
        result = session.step()
        assert result.step == 1
        assert session.step_index == 1


class TestLegacyEquivalence:
    def test_session_run_matches_simulation_run_bitwise(self):
        """Session.run == Simulation.run: fields, J/rho, energy history."""
        session = workload().build_session()
        legacy = workload().build_simulation()
        for _ in session.run(3, record_energy=True):
            pass
        legacy.run(3, record_energy=True)
        for name in ALL_COMPONENTS:
            assert np.array_equal(getattr(session.grid, name),
                                  getattr(legacy.grid, name)), name
        assert ([(r.step, r.field_energy, r.kinetic_energy)
                 for r in session.energy.history]
                == [(r.step, r.field_energy, r.kinetic_energy)
                    for r in legacy.energy.history])

    def test_session_run_matches_decomposed_simulation_run(self):
        build = lambda: workload(
            domains=(2, 1, 1),
            execution=ExecutionConfig(backend="threads", num_shards=2))
        with build().build_session() as session:
            for _ in session.run(2, record_energy=True):
                pass
            session.simulation.domain.assemble(session.grid)
            with build().build_simulation() as legacy:
                legacy.run(2, record_energy=True)
                legacy.domain.assemble(legacy.grid)
                for name in ALL_COMPONENTS:
                    assert np.array_equal(getattr(session.grid, name),
                                          getattr(legacy.grid, name)), name


class TestLifecycle:
    def test_context_manager_shuts_down_executor(self):
        with workload(
            execution=ExecutionConfig(backend="threads", num_shards=2)
        ).build_session() as session:
            list(session.run(1))
            executor = session.simulation.executor
        # pool released; stepping again recreates it lazily
        assert executor is session.simulation.executor
        list(session.run(1))
        session.shutdown()

"""Tests (including property-based tests) for the Gapped Packed Memory Array."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gpma import GappedPMA


def build_gpma(bins, num_bins=8, gap_fraction=0.25):
    gpma = GappedPMA(num_bins=num_bins, gap_fraction=gap_fraction)
    gpma.build(np.asarray(bins, dtype=np.int64))
    return gpma


class TestBuild:
    def test_empty_build(self):
        gpma = build_gpma([])
        assert gpma.num_particles == 0
        assert gpma.capacity >= gpma.num_bins  # min one gap slot per bin
        gpma.check_invariants()

    def test_basic_build(self):
        gpma = build_gpma([0, 0, 1, 3, 3, 3])
        assert gpma.num_particles == 6
        np.testing.assert_array_equal(gpma.bin_population(),
                                      [2, 1, 0, 3, 0, 0, 0, 0])
        gpma.check_invariants()

    def test_iteration_order_is_cell_sorted(self):
        bins = [3, 0, 2, 0, 1, 3]
        gpma = build_gpma(bins)
        order = gpma.iteration_order()
        sorted_bins = np.asarray(bins)[order]
        assert np.all(np.diff(sorted_bins) >= 0)

    def test_particles_in_bin(self):
        gpma = build_gpma([2, 2, 5])
        np.testing.assert_array_equal(sorted(gpma.particles_in_bin(2)), [0, 1])
        np.testing.assert_array_equal(gpma.particles_in_bin(5), [2])
        assert gpma.particles_in_bin(0).size == 0

    def test_bin_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_gpma([0, 9])
        gpma = build_gpma([0])
        with pytest.raises(IndexError):
            gpma.particles_in_bin(42)

    def test_gap_fraction_creates_gaps(self):
        gpma = build_gpma([0] * 100, num_bins=2, gap_fraction=0.25)
        assert gpma.num_empty_slots >= 25
        assert gpma.empty_ratio > 0.0

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            GappedPMA(num_bins=0)
        with pytest.raises(ValueError):
            GappedPMA(num_bins=4, gap_fraction=1.0)


class TestUpdates:
    def test_delete_is_o1_and_consistent(self):
        gpma = build_gpma([0, 0, 1])
        stats = gpma.delete(0)
        assert stats.deletions == 1
        assert gpma.num_particles == 2
        assert gpma.bin_of(0) is None
        assert 0 not in gpma.iteration_order()
        gpma.check_invariants()

    def test_delete_missing_particle_raises(self):
        gpma = build_gpma([0])
        with pytest.raises(KeyError):
            gpma.delete(99)

    def test_insert_into_gap(self):
        gpma = build_gpma([0, 0, 1])
        gpma.delete(2)
        stats = gpma.insert(2, 4)
        assert stats.insertions == 1
        assert gpma.bin_of(2) == 4
        assert 2 in gpma.particles_in_bin(4)
        gpma.check_invariants()

    def test_insert_duplicate_raises(self):
        gpma = build_gpma([0])
        with pytest.raises(KeyError):
            gpma.insert(0, 1)

    def test_move_between_bins(self):
        gpma = build_gpma([0, 1, 2, 3])
        gpma.delete(1)
        gpma.insert(1, 3)
        assert gpma.bin_of(1) == 3
        np.testing.assert_array_equal(gpma.bin_population(),
                                      [1, 0, 1, 2, 0, 0, 0, 0])
        gpma.check_invariants()

    def test_borrow_from_next_bin(self):
        # bin 0 packed full (gap_fraction 0 would leave no gaps; use the
        # minimum single gap and fill it first)
        gpma = GappedPMA(num_bins=3, gap_fraction=0.0, min_gap_slots=1)
        gpma.build(np.array([0, 0, 1, 1]))
        # fill bin 0's single gap
        gpma.delete(3)
        gpma.insert(3, 0)
        # the next insertion into bin 0 must borrow from bin 1's region
        gpma.delete(2)
        stats = gpma.insert(2, 0)
        assert gpma.bin_of(2) == 0
        assert len(gpma.overflow) == 0
        assert stats.borrow_shifts >= 0
        gpma.check_invariants()

    def test_overflow_when_no_gaps_anywhere(self):
        gpma = GappedPMA(num_bins=2, gap_fraction=0.0, min_gap_slots=0)
        gpma.build(np.array([0, 0, 1, 1]))
        assert gpma.num_empty_slots == 0
        gpma.delete(0)
        gpma.insert(0, 0)           # reuses the freed slot
        with pytest.raises(KeyError):
            gpma.insert(0, 1)       # duplicate check still first
        gpma.delete(3)
        gpma.insert(3, 0)           # bin 1's freed slot cannot serve bin 0...
        # ... unless borrowed; the last bin has a gap so borrowing succeeded
        gpma.check_invariants()

    def test_needs_rebuild_on_overflow(self):
        gpma = GappedPMA(num_bins=2, gap_fraction=0.0, min_gap_slots=0)
        gpma.build(np.array([0, 1]))
        # force an overflow by inserting a brand-new particle index with no
        # gaps available anywhere
        gpma.insert(5, 1)
        assert len(gpma.overflow) == 1
        assert gpma.needs_rebuild()

    def test_rebuild_clears_overflow_and_counts(self):
        gpma = build_gpma([0, 1, 2])
        before = gpma.rebuild_count
        gpma.build(np.array([2, 2, 2]))
        assert gpma.rebuild_count == before + 1
        assert gpma.was_rebuilt_this_step
        assert len(gpma.overflow) == 0
        gpma.check_invariants()

    def test_reset_step_flags(self):
        gpma = build_gpma([0])
        assert gpma.was_rebuilt_this_step
        gpma.reset_step_flags()
        assert not gpma.was_rebuilt_this_step


class TestGPMAProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=60))
    def test_build_preserves_population(self, bins):
        gpma = build_gpma(bins)
        gpma.check_invariants()
        assert gpma.num_particles == len(bins)
        expected = np.bincount(np.asarray(bins, dtype=int), minlength=8)
        np.testing.assert_array_equal(gpma.bin_population(), expected)
        # every particle index appears exactly once
        order = np.sort(gpma.iteration_order())
        np.testing.assert_array_equal(order, np.arange(len(bins)))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40),
        st.data(),
    )
    def test_random_moves_keep_invariants(self, bins, data):
        """Random delete/insert sequences never corrupt the structure."""
        gpma = build_gpma(bins)
        n = len(bins)
        moves = data.draw(st.lists(
            st.tuples(st.integers(min_value=0, max_value=n - 1),
                      st.integers(min_value=0, max_value=7)),
            min_size=0, max_size=20))
        current = {p: b for p, b in enumerate(bins)}
        for particle, new_bin in moves:
            gpma.delete(particle)
            gpma.insert(particle, new_bin)
            if gpma.overflow:
                gpma.build(np.array([current.get(i, 0) for i in range(n)]))
                current = {p: b for p, b in enumerate(
                    [current.get(i, 0) for i in range(n)])}
                continue
            current[particle] = new_bin
            gpma.check_invariants()
        # population matches the tracked assignment
        expected = np.bincount(np.array([current[i] for i in range(n)]),
                               minlength=8)
        if not gpma.overflow:
            np.testing.assert_array_equal(gpma.bin_population(), expected)

"""Tests for the tile executor subsystem (:mod:`repro.exec`).

The central property is the determinism contract: for a fixed shard
count, the serial, threaded and process backends partition tiles
identically, accumulate into private scratch buffers, and merge in shard
order — so deposited currents, charge densities and merged
:class:`~repro.hardware.counters.KernelCounters` are *bitwise identical*
across backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExecutionConfig
from repro.exec import (
    ProcessShardExecutor,
    SerialExecutor,
    ThreadTileExecutor,
    TileTask,
    create_executor,
    partition_shards,
)
from repro.core.framework import MatrixPICDeposition, SORT_INCREMENTAL
from repro.pic.deposition.baseline import BaselineDeposition
from repro.pic.deposition.reference import (
    deposit_reference,
    deposit_rho_reference,
)
from repro.workloads.uniform import UniformPlasmaWorkload

from helpers import make_plasma

SHARDS = 3


def _fresh_plasma(tiled_grid_config, seed=11):
    return make_plasma(tiled_grid_config, ppc=(2, 2, 2), seed=seed)


def _executors():
    return {
        "serial": SerialExecutor(SHARDS),
        "threads": ThreadTileExecutor(SHARDS),
        "processes": ProcessShardExecutor(SHARDS),
    }


# ----------------------------------------------------------------------
# partitioning and configuration
# ----------------------------------------------------------------------
class TestPartitioning:
    def test_partition_covers_all_items_in_order(self):
        shards = partition_shards(10, 3)
        flat = [i for s in shards for i in s.tile_indices]
        assert flat == list(range(10))
        assert [s.index for s in shards] == [0, 1, 2]
        assert [s.num_tiles for s in shards] == [4, 3, 3]

    def test_partition_never_emits_empty_shards(self):
        assert [s.num_tiles for s in partition_shards(2, 5)] == [1, 1]
        assert partition_shards(0, 4) == []

    def test_partition_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            partition_shards(4, 0)

    def test_execution_config_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(backend="gpu")
        with pytest.raises(ValueError):
            ExecutionConfig(num_shards=0)
        assert ExecutionConfig().backend == "serial"

    def test_factory_builds_each_backend(self):
        for backend, cls in (("serial", SerialExecutor),
                             ("threads", ThreadTileExecutor),
                             ("processes", ProcessShardExecutor)):
            executor = create_executor(
                ExecutionConfig(backend=backend, num_shards=2))
            assert isinstance(executor, cls)
            assert executor.num_shards == 2
            executor.shutdown()
        assert create_executor(None).is_trivial

    def test_executors_preserve_task_order(self):
        tasks = [TileTask(_identity, (i,)) for i in range(7)]
        for name, executor in _executors().items():
            with executor:
                assert executor.run(tasks) == list(range(7)), name


def _identity(value):
    return value


# ----------------------------------------------------------------------
# reference deposition parity
# ----------------------------------------------------------------------
class TestReferenceParity:
    def test_current_bitwise_identical_across_backends(self, tiled_grid_config):
        results = {}
        for name, executor in _executors().items():
            grid, container = _fresh_plasma(tiled_grid_config)
            with executor:
                deposit_reference(grid, container, order=1, executor=executor)
            results[name] = (grid.jx.copy(), grid.jy.copy(), grid.jz.copy())
        for name in ("threads", "processes"):
            for ref, got in zip(results["serial"], results[name]):
                assert np.array_equal(ref, got), name

    def test_sharded_matches_inline_loop(self, tiled_grid_config):
        grid_inline, container = _fresh_plasma(tiled_grid_config)
        deposit_reference(grid_inline, container, order=1)

        grid_sharded, container = _fresh_plasma(tiled_grid_config)
        with SerialExecutor(1) as executor:
            deposit_reference(grid_sharded, container, order=1,
                              executor=executor)
        assert np.array_equal(grid_inline.jx, grid_sharded.jx)

    def test_single_shard_backends_match_on_nonzero_grid(
            self, tiled_grid_config):
        # regression: at one shard every backend must take the same inline
        # path.  A backend-dependent choice shows up once the grid already
        # holds another species' currents — inline deposits straight into
        # the non-zero grid, a scratch-merge path would reassociate the
        # sums and drift in the last ulp.
        results = {}
        for name in ("serial", "threads", "processes"):
            grid, container = _fresh_plasma(tiled_grid_config)
            _, other = _fresh_plasma(tiled_grid_config, seed=91)
            with create_executor(ExecutionConfig(backend=name,
                                                 num_shards=1)) as executor:
                deposit_reference(grid, other, order=1, executor=executor)
                deposit_reference(grid, container, order=1, executor=executor)
            results[name] = grid.jx.copy()
        assert np.array_equal(results["serial"], results["threads"])
        assert np.array_equal(results["serial"], results["processes"])

    def test_rho_bitwise_identical_across_backends(self, tiled_grid_config):
        results = {}
        for name, executor in _executors().items():
            grid, container = _fresh_plasma(tiled_grid_config)
            with executor:
                deposit_rho_reference(grid, container, order=1,
                                      executor=executor)
            results[name] = grid.rho.copy()
        assert np.array_equal(results["serial"], results["threads"])
        assert np.array_equal(results["serial"], results["processes"])


# ----------------------------------------------------------------------
# instrumented kernels: counters must merge deterministically
# ----------------------------------------------------------------------
class TestKernelCounterParity:
    def test_kernel_deposit_counters_and_currents(self, tiled_grid_config):
        results = {}
        for name, executor in _executors().items():
            grid, container = _fresh_plasma(tiled_grid_config)
            kernel = BaselineDeposition()
            with executor:
                counters = kernel.deposit(grid, container, order=1,
                                          executor=executor)
            results[name] = (grid.jx.copy(), counters)
        jx_ref, counters_ref = results["serial"]
        for name in ("threads", "processes"):
            jx, counters = results[name]
            assert np.array_equal(jx_ref, jx), name
            for phase in counters_ref.phases:
                assert (counters.phase(phase).as_dict()
                        == counters_ref.phase(phase).as_dict()), (name, phase)

    def test_matrix_pic_threaded_matches_serial(self, tiled_grid_config):
        results = {}
        for name, executor in (("serial", SerialExecutor(SHARDS)),
                               ("threads", ThreadTileExecutor(SHARDS))):
            grid, container = _fresh_plasma(tiled_grid_config)
            strategy = MatrixPICDeposition(sort_mode=SORT_INCREMENTAL)
            with executor:
                counters = strategy.run_step(grid, container, 1, 0,
                                             executor=executor)
            results[name] = (grid.jx.copy(), counters)
        jx_ref, counters_ref = results["serial"]
        jx_thr, counters_thr = results["threads"]
        assert np.array_equal(jx_ref, jx_thr)
        for phase in counters_ref.phases:
            assert (counters_thr.phase(phase).as_dict()
                    == counters_ref.phase(phase).as_dict()), phase

    def test_matrix_pic_process_backend_matches_serial_shards(
            self, tiled_grid_config):
        # the incremental sorter's GPMA state lives on the tiles, so the
        # process backend runs the same shard tasks inline — the reduction
        # tree (and the result) must match the serial executor bitwise at
        # the same shard count.
        grid_a, container_a = _fresh_plasma(tiled_grid_config)
        strategy_a = MatrixPICDeposition(sort_mode=SORT_INCREMENTAL)
        with SerialExecutor(SHARDS) as executor:
            counters_a = strategy_a.run_step(grid_a, container_a, 1, 0,
                                             executor=executor)

        grid_b, container_b = _fresh_plasma(tiled_grid_config)
        strategy_b = MatrixPICDeposition(sort_mode=SORT_INCREMENTAL)
        with ProcessShardExecutor(SHARDS) as executor:
            counters_b = strategy_b.run_step(grid_b, container_b, 1, 0,
                                             executor=executor)
        assert np.array_equal(grid_a.jx, grid_b.jx)
        for phase in counters_a.phases:
            assert (counters_b.phase(phase).as_dict()
                    == counters_a.phase(phase).as_dict()), phase


# ----------------------------------------------------------------------
# whole-simulation parity
# ----------------------------------------------------------------------
class TestSimulationParity:
    @staticmethod
    def _run(backend: str, num_shards: int, steps: int = 3):
        workload = UniformPlasmaWorkload(
            n_cell=(8, 8, 8), tile_size=(4, 4, 4), ppc=8, max_steps=steps,
            execution=ExecutionConfig(backend=backend, num_shards=num_shards),
        )
        simulation = workload.build_simulation()
        try:
            simulation.run(record_energy=True)
            soa = simulation.containers[0].gather_soa()
            order = np.argsort(soa["ids"])
            return {
                "jx": simulation.grid.jx.copy(),
                "soa": {k: v[order] for k, v in soa.items()},
                "energy": simulation.energy.history[-1].total,
                "executor": simulation.breakdown.executor_name,
            }
        finally:
            simulation.shutdown()

    def test_threads_bitwise_identical_to_serial(self):
        ref = self._run("serial", 4)
        thr = self._run("threads", 4)
        assert thr["executor"] == "threads"
        assert np.array_equal(ref["jx"], thr["jx"])
        for key, ref_arr in ref["soa"].items():
            assert np.array_equal(ref_arr, thr["soa"][key]), key
        assert thr["energy"] == ref["energy"]

    def test_processes_match_serial_currents_and_particles(self):
        ref = self._run("serial", 4)
        proc = self._run("processes", 4)
        assert np.array_equal(ref["jx"], proc["jx"])
        for key, ref_arr in ref["soa"].items():
            assert np.array_equal(ref_arr, proc["soa"][key]), key
        # the kinetic-energy reduction runs inline for the process backend
        # but over the same shard partition, so even the reduction tree —
        # and hence the value — matches bitwise.
        assert proc["energy"] == ref["energy"]

    def test_boundary_and_redistribute_sharded(self, tiled_grid_config):
        grid_a, container_a = _fresh_plasma(tiled_grid_config, seed=23)
        grid_b, container_b = _fresh_plasma(tiled_grid_config, seed=23)
        # push particles far enough to cross tiles
        for container in (container_a, container_b):
            for tile in container.iter_tiles():
                tile.x += 2.5e-6
        container_a.apply_boundary_conditions(grid_a)
        moved_a = container_a.redistribute(grid_a)
        with ThreadTileExecutor(SHARDS) as executor:
            container_b.apply_boundary_conditions(grid_b, executor=executor)
            moved_b = container_b.redistribute(grid_b, executor=executor)
        assert moved_a == moved_b > 0
        for tile_a, tile_b in zip(container_a.iter_tiles(),
                                  container_b.iter_tiles()):
            assert np.array_equal(tile_a.ids, tile_b.ids)
            assert np.array_equal(tile_a.x, tile_b.x)


# ----------------------------------------------------------------------
# degraded process pools
# ----------------------------------------------------------------------
def test_process_executor_degrades_to_inline(monkeypatch):
    import repro.exec.process as process_mod

    def boom(*args, **kwargs):
        raise OSError("no processes for you")

    monkeypatch.setattr(process_mod.concurrent.futures,
                        "ProcessPoolExecutor", boom)
    executor = ProcessShardExecutor(2)
    tasks = [TileTask(_identity, (i,)) for i in range(4)]
    assert executor.run(tasks) == [0, 1, 2, 3]
    assert executor.degraded

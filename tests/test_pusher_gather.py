"""Tests for the Boris pusher and the field gather."""

import numpy as np
import pytest

from repro import constants
from repro.config import GridConfig, SpeciesConfig
from repro.pic.gather import gather_field, gather_fields_for_tile
from repro.pic.grid import Grid
from repro.pic.particles import ParticleContainer, ParticleTile
from repro.pic.pusher import (
    BorisPusher,
    boris_push_momentum,
    lorentz_factor,
    velocities,
)


def _single(value=0.0):
    return np.array([value])


class TestLorentzFactor:
    def test_rest_particle(self):
        assert lorentz_factor(_single(), _single(), _single())[0] == pytest.approx(1.0)

    def test_known_gamma(self):
        # u = gamma v; for gamma = 2, |u| = sqrt(3) c
        u = np.sqrt(3.0) * constants.C_LIGHT
        assert lorentz_factor(_single(u), _single(), _single())[0] == pytest.approx(2.0)

    def test_velocities_below_c(self):
        vx, vy, vz = velocities(_single(1.0e10), _single(0.0), _single(0.0))
        assert abs(vx[0]) < constants.C_LIGHT


class TestBorisPush:
    def test_pure_electric_acceleration(self):
        q, m = constants.Q_ELECTRON, constants.M_ELECTRON
        dt = 1.0e-15
        e_field = 1.0e6
        ux, uy, uz = boris_push_momentum(
            _single(), _single(), _single(),
            _single(e_field), _single(), _single(),
            _single(), _single(), _single(), q, m, dt)
        assert ux[0] == pytest.approx(q * e_field * dt / m)
        assert uy[0] == pytest.approx(0.0)
        assert uz[0] == pytest.approx(0.0)

    def test_pure_magnetic_rotation_conserves_energy(self):
        q, m = constants.Q_ELECTRON, constants.M_ELECTRON
        dt = 1.0e-13
        u0 = 1.0e7
        ux, uy, uz = boris_push_momentum(
            _single(u0), _single(), _single(),
            _single(), _single(), _single(),
            _single(), _single(), _single(1.0e-2), q, m, dt)
        mag0 = u0
        mag1 = np.sqrt(ux[0]**2 + uy[0]**2 + uz[0]**2)
        assert mag1 == pytest.approx(mag0, rel=1e-12)
        # the particle must actually have rotated
        assert abs(uy[0]) > 0.0

    def test_larmor_rotation_direction(self):
        # an electron in +z magnetic field moving along +x rotates towards +y
        q, m = constants.Q_ELECTRON, constants.M_ELECTRON
        ux, uy, _ = boris_push_momentum(
            _single(1.0e6), _single(), _single(),
            _single(), _single(), _single(),
            _single(), _single(), _single(1.0e-3), q, m, 1.0e-13)
        assert uy[0] > 0.0

    def test_zero_field_is_identity(self):
        q, m = constants.Q_ELECTRON, constants.M_ELECTRON
        ux, uy, uz = boris_push_momentum(
            _single(3.0e6), _single(-2.0e6), _single(1.0e6),
            _single(), _single(), _single(),
            _single(), _single(), _single(), q, m, 1.0e-14)
        assert ux[0] == pytest.approx(3.0e6)
        assert uy[0] == pytest.approx(-2.0e6)
        assert uz[0] == pytest.approx(1.0e6)


class TestGather:
    @pytest.fixture
    def grid(self):
        return Grid(GridConfig(n_cell=(8, 8, 8), hi=(8.0, 8.0, 8.0)))

    def test_uniform_field_gathers_exactly(self, grid):
        grid.ex[:] = 5.0
        value = gather_field(grid, grid.ex, np.array([3.3]), np.array([4.7]),
                             np.array([1.1]), order=1)
        assert value[0] == pytest.approx(5.0)

    @pytest.mark.parametrize("order", [1, 3])
    def test_linear_field_interpolated_linearly(self, grid, order):
        # a field linear in x is reproduced exactly by first- and third-order
        # B-spline interpolation away from the periodic wrap
        x_nodes = np.arange(8)
        grid.ex[:] = x_nodes[:, None, None].astype(float)
        value = gather_field(grid, grid.ex, np.array([3.25]), np.array([4.0]),
                             np.array([4.0]), order=order)
        assert value[0] == pytest.approx(3.25, rel=1e-12)

    def test_gather_fields_for_tile_shapes(self, grid):
        tile = ParticleTile((0, 0, 0), (0, 0, 0), (8, 8, 8))
        tile.append(x=np.array([1.0, 2.0]), y=np.array([1.0, 2.0]),
                    z=np.array([1.0, 2.0]))
        fields = gather_fields_for_tile(grid, tile, order=1)
        assert len(fields) == 6
        assert all(f.shape == (2,) for f in fields)


class TestBorisPusherIntegration:
    def test_push_moves_particles(self):
        config = GridConfig(n_cell=(8, 8, 8), hi=(8.0, 8.0, 8.0))
        grid = Grid(config)
        grid.ez[:] = 1.0e9
        container = ParticleContainer(config, SpeciesConfig())
        container.add_particles(grid, x=np.array([4.0]), y=np.array([4.0]),
                                z=np.array([4.0]))
        pusher = BorisPusher(shape_order=1)
        dt = 1.0e-12
        pusher.push(container, grid, dt)
        tile = container.nonempty_tiles()[0]
        # the electron accelerates against Ez
        assert tile.uz[0] < 0.0
        assert tile.z[0] != 4.0

"""Tests for the pluggable array-backend layer (:mod:`repro.backend`).

Covers the kernel registry (tier listing, auto-selection, strict explicit
selection, inheritance from the oracle), the missing-numba fallback
(faked ImportError, logged exactly once, silent to callers), the
bitwise-parity contract between the fused kernel implementations and the
oracle (runnable without numba: the ``_impl`` loop bodies are plain
Python functions), and the configuration plumbing — ``BackendConfig`` on
``SimulationConfig``/workloads, the ``Session(backend=...)`` knob, the
``REPRO_KERNEL_TIER`` environment override, the ``kernel_tier`` field of
``RuntimeBreakdown`` and the numerics-tag normalisation of campaign
cache keys.
"""

from __future__ import annotations

import importlib
import logging
import sys

import numpy as np
import pytest

from repro.backend import (
    BackendConfig,
    KERNEL_NAMES,
    KERNEL_TIER_ENV,
    KernelRegistry,
    KernelTier,
    NumpyBackend,
    activate,
    active_backend,
    active_kernels,
    kernel_registry,
    use_backend,
)
from repro.backend import kernels_numba, kernels_oracle
from repro.backend.registry import NUMERICS_FLAT_V1
from repro.pic.shapes import shape_factors, shape_support


def _random_shape_data(rng, shape, n, order):
    """In-range base indices and 1-D weights plus the bounding box."""
    support = shape_support(order)
    xi = rng.uniform(0.0, shape[0], n)
    yi = rng.uniform(0.0, shape[1], n)
    zi = rng.uniform(0.0, shape[2], n)
    base_x, wx = shape_factors(xi, order)
    base_y, wy = shape_factors(yi, order)
    base_z, wz = shape_factors(zi, order)
    lo = (int(base_x.min()), int(base_y.min()), int(base_z.min()))
    hi = (int(base_x.max()), int(base_y.max()), int(base_z.max()))
    dims = tuple(hi[a] - lo[a] + support for a in range(3))
    return base_x, base_y, base_z, wx, wy, wz, lo, dims


def _registry_with_builtin_wiring():
    """A fresh registry mirroring the module-level tier registration."""
    reg = KernelRegistry()
    reg.register(KernelTier(
        name="oracle", numerics=NUMERICS_FLAT_V1, priority=0,
        kernels={
            "build_weights": kernels_oracle.build_weights,
            "scatter": kernels_oracle.scatter,
            "scatter3": kernels_oracle.scatter3,
            "gather6": kernels_oracle.gather6,
            "fdtd_roll": kernels_oracle.fdtd_roll,
        },
    ))
    reg.register(KernelTier(
        name="fused", numerics=NUMERICS_FLAT_V1, priority=10,
        kernels={
            "build_weights": kernels_numba.build_weights,
            "scatter": kernels_numba.scatter,
            "scatter3": kernels_numba.scatter3,
        },
        is_available=kernels_numba.available,
        unavailable_reason=kernels_numba.unavailable_reason,
    ))
    return reg


class TestRegistry:
    def test_builtin_tiers_registered_best_first(self):
        names = kernel_registry.tier_names()
        assert names.index("fused") < names.index("oracle")

    def test_oracle_always_available(self):
        assert "oracle" in kernel_registry.available_tier_names()

    def test_auto_resolves_to_best_available(self):
        resolved = kernel_registry.resolve("auto")
        assert resolved.tier == kernel_registry.available_tier_names()[0]
        assert resolved.numerics == NUMERICS_FLAT_V1

    def test_unknown_tier_is_an_error(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            kernel_registry.resolve("no-such-tier")

    def test_explicit_unavailable_tier_is_an_error(self):
        if kernels_numba.available():
            pytest.skip("numba installed: fused tier is available")
        with pytest.raises(ValueError, match="not available"):
            kernel_registry.resolve("fused")

    def test_tier_rejects_unknown_kernel_names(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            KernelTier(name="bogus", numerics="x", priority=1,
                       kernels={"not_a_kernel": lambda: None})

    def test_fused_inherits_oracle_gather_and_roll(self):
        reg = _registry_with_builtin_wiring()
        if not kernels_numba.available():
            pytest.skip("numba missing: fused tier cannot resolve")
        resolved = reg.resolve("fused")
        assert resolved.gather6 is kernels_oracle.gather6
        assert resolved.fdtd_roll is kernels_oracle.fdtd_roll

    def test_oracle_dispatch_table_is_complete(self):
        resolved = kernel_registry.resolve("oracle")
        for name in KERNEL_NAMES:
            if name == "scatter3":
                assert resolved.scatter3 is None  # stencil path is the ref
            else:
                assert callable(getattr(resolved, name))


class TestMissingNumbaFallback:
    def test_faked_import_error_disables_tier_and_logs_once(self, caplog):
        """With numba unimportable the fused tier silently drops out of
        auto-selection; the skip is logged exactly once per registry."""
        with pytest.MonkeyPatch.context() as mp:
            mp.setitem(sys.modules, "numba", None)  # forces ImportError
            importlib.reload(kernels_numba)
            assert not kernels_numba.available()
            assert "numba is not importable" in \
                kernels_numba.unavailable_reason()
            assert "[jit]" in kernels_numba.unavailable_reason()

            reg = _registry_with_builtin_wiring()
            with caplog.at_level(logging.INFO, logger="repro.backend"):
                assert reg.resolve("auto").tier == "oracle"
                first = [r for r in caplog.records if "fused" in r.getMessage()]
                assert len(first) == 1
                # a second auto resolution does not log again
                reg2 = KernelRegistry()
                for name in ("oracle", "fused"):
                    reg2.register(_registry_with_builtin_wiring().tier(name))
                caplog.clear()
                reg.resolve("auto")
                assert not [r for r in caplog.records
                            if "fused" in r.getMessage()]
        # restore the real import state for the rest of the suite
        importlib.reload(kernels_numba)

    def test_plain_python_kernels_still_work_without_numba(self):
        """The kernel wrappers stay callable (and correct) with the jit
        decoration skipped — the substance of the silent fallback."""
        with pytest.MonkeyPatch.context() as mp:
            mp.setitem(sys.modules, "numba", None)
            importlib.reload(kernels_numba)
            ids = np.array([[0, 1], [1, 2]])
            weights = np.array([[1.0, 2.0], [3.0, 4.0]])
            out = kernels_numba.scatter(ids, weights, None, 4)
            assert out.tolist() == [1.0, 5.0, 4.0, 0.0]
        importlib.reload(kernels_numba)


class TestFusedBitwiseParity:
    """The fused kernels equal the oracle *bitwise*.

    These run the fused loop bodies as plain Python when numba is
    missing (identical arithmetic, just slow), so the contract is pinned
    in every environment; the CI [jit] leg re-runs them compiled.
    """

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_build_weights_bitwise(self, order):
        rng = np.random.default_rng(order)
        args = _random_shape_data(rng, (6, 7, 5), 80, order)
        ids_o, wts_o = kernels_oracle.build_weights(*args)
        ids_f, wts_f = kernels_numba.build_weights(*args)
        assert np.array_equal(ids_o, ids_f)
        assert np.array_equal(wts_o, wts_f)

    @pytest.mark.parametrize("order", [1, 2, 3])
    @pytest.mark.parametrize("with_amplitude", [False, True])
    def test_scatter_bitwise(self, order, with_amplitude):
        rng = np.random.default_rng(10 + order)
        args = _random_shape_data(rng, (6, 6, 6), 70, order)
        ids, wts = kernels_oracle.build_weights(*args)
        size = int(np.prod(args[7]))
        amplitude = rng.normal(size=70) if with_amplitude else None
        out_o = kernels_oracle.scatter(ids, wts, amplitude, size)
        out_f = kernels_numba.scatter(ids, wts, amplitude, size)
        assert np.array_equal(out_o, out_f)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_scatter3_bitwise_vs_componentwise_oracle(self, order):
        """The fully fused three-component deposit equals three oracle
        amplitude scatters over the shared stencil, bitwise."""
        rng = np.random.default_rng(20 + order)
        n = 60
        base_x, base_y, base_z, wx, wy, wz, lo, dims = \
            _random_shape_data(rng, (5, 6, 7), n, order)
        ax, ay, az = (rng.normal(size=n) for _ in range(3))
        ids, wts = kernels_oracle.build_weights(
            base_x, base_y, base_z, wx, wy, wz, lo, dims)
        size = int(np.prod(dims))
        boxes = kernels_numba.scatter3(base_x, base_y, base_z, wx, wy, wz,
                                       ax, ay, az, lo, dims)
        for amp, box in zip((ax, ay, az), boxes):
            expected = kernels_oracle.scatter(ids, wts, amp, size)
            assert np.array_equal(expected, box.reshape(-1))

    def test_empty_batch_guards(self):
        empty_i = np.empty((0,), dtype=np.int64)
        empty_w = np.empty((0, 2))
        ids, wts = kernels_numba.build_weights(
            empty_i, empty_i, empty_i, empty_w, empty_w, empty_w,
            (0, 0, 0), (2, 2, 2))
        assert ids.shape == (0, 8) and wts.shape == (0, 8)
        out = kernels_numba.scatter(np.empty((0, 8), dtype=np.int64),
                                    np.empty((0, 8)), None, 8)
        assert out.shape == (8,) and not out.any()


class TestActivation:
    def test_default_activation_is_numpy_oracle(self):
        with use_backend(None) as selection:
            assert selection.backend.name == "numpy"
            assert selection.kernel_tier == \
                kernel_registry.available_tier_names()[0]
            assert active_backend() is selection.backend
            assert active_kernels() is selection.kernels

    def test_string_coerces_to_kernel_tier(self):
        with use_backend("oracle") as selection:
            assert selection.kernel_tier == "oracle"
            assert selection.config == BackendConfig(kernel_tier="oracle")

    def test_use_backend_restores_previous_selection(self):
        before = activate(BackendConfig())
        with use_backend("oracle"):
            pass
        assert active_kernels() is before.kernels

    def test_unknown_array_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            activate(BackendConfig(array_backend="cupy"))

    def test_invalid_config_type_is_an_error(self):
        with pytest.raises(TypeError):
            activate(3.14)

    def test_numpy_backend_allocation_policy(self):
        backend = NumpyBackend()
        assert backend.xp is np
        assert backend.zeros((2, 3)).dtype == np.float64
        assert backend.empty(4, dtype=np.int64).dtype == np.int64
        assert backend.asarray([1, 2], dtype=backend.index_dtype).dtype \
            == np.int64

    def test_env_override_applies_to_auto_only(self, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV, "oracle")
        with use_backend(BackendConfig()) as selection:
            assert selection.kernel_tier == "oracle"
        # an explicitly configured tier wins over the environment
        monkeypatch.setenv(KERNEL_TIER_ENV, "no-such-tier")
        with use_backend(BackendConfig(kernel_tier="oracle")) as selection:
            assert selection.kernel_tier == "oracle"

    def test_env_override_is_strict(self, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV, "no-such-tier")
        with pytest.raises(ValueError, match="unknown kernel tier"):
            with use_backend(BackendConfig()):
                pass  # pragma: no cover


class TestConfigPlumbing:
    def test_simulation_config_carries_backend(self):
        from repro.config import GridConfig, SimulationConfig

        config = SimulationConfig(grid=GridConfig(n_cell=(4, 4, 4)))
        assert config.backend == BackendConfig()
        updated = config.with_updates(
            backend=BackendConfig(kernel_tier="oracle"))
        assert updated.backend.kernel_tier == "oracle"

    def test_session_backend_knob_and_breakdown_tier(self):
        from repro.workloads.uniform import UniformPlasmaWorkload

        workload = UniformPlasmaWorkload(n_cell=(4, 4, 4),
                                         tile_size=(4, 4, 4),
                                         ppc=1, max_steps=1)
        from repro.api import Session

        with Session.from_workload(workload, backend="oracle") as session:
            assert session.config.backend.kernel_tier == "oracle"
            session.run_all(1)
            assert session.breakdown.kernel_tier == "oracle"

    def test_session_rejects_bad_backend_argument(self):
        from repro.api import _coerce_backend

        with pytest.raises(TypeError):
            _coerce_backend(42)

    def test_workloads_carry_backend_config(self):
        from repro.workloads.lwfa import LWFAWorkload
        from repro.workloads.uniform import UniformPlasmaWorkload

        for cls in (UniformPlasmaWorkload, LWFAWorkload):
            workload = cls(backend=BackendConfig(kernel_tier="oracle"))
            assert workload.build_config().backend.kernel_tier == "oracle"

    def test_campaign_rebuilds_nested_backend(self):
        from repro.analysis.campaign import build_workload

        workload = build_workload("uniform", {
            "ppc": 8,
            "backend": {"array_backend": "numpy", "kernel_tier": "oracle"},
        })
        assert workload.backend == BackendConfig(kernel_tier="oracle")


class TestCacheKeyNumericsTag:
    def _spec(self, kernel_tier):
        import dataclasses

        from repro.analysis.campaign import spec_for_workload
        from repro.workloads.uniform import UniformPlasmaWorkload

        workload = UniformPlasmaWorkload(
            ppc=8, backend=BackendConfig(kernel_tier=kernel_tier))
        spec = spec_for_workload(workload, "Baseline", steps=1)
        assert dataclasses.asdict(workload)["backend"][
            "kernel_tier"] == kernel_tier
        return spec

    def test_bitwise_equal_tiers_share_cache_keys(self):
        """'oracle', 'auto' and (when available) 'fused' all resolve to
        the flat-index numerics tag, so their results share one cache
        entry — different tiers must not collide *unless* bitwise equal,
        and the built-ins are."""
        keys = {self._spec(tier).cache_key()
                for tier in ("oracle", "auto")
                + (("fused",) if kernels_numba.available() else ())}
        assert len(keys) == 1

    def test_different_numerics_get_different_keys(self):
        """A tier with a different numerics tag cannot replay flat-index
        results from the cache."""
        tier_name = "test-different-numerics"
        kernel_registry.register(
            KernelTier(name=tier_name, numerics="test-numerics-v2",
                       priority=-100), replace=True)
        assert kernel_registry.numerics_tag(tier_name) == "test-numerics-v2"
        assert self._spec(tier_name).cache_key() != \
            self._spec("oracle").cache_key()

    def test_numerics_tag_of_auto_matches_oracle(self):
        assert kernel_registry.numerics_tag("auto") == \
            kernel_registry.numerics_tag("oracle")

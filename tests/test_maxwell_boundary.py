"""Tests for the FDTD solvers, boundary conditions, laser and moving window."""

import numpy as np
import pytest

from repro import constants
from repro.config import GridConfig, LaserConfig, MovingWindowConfig, SpeciesConfig
from repro.pic.boundary import FieldBoundaryConditions
from repro.pic.grid import Grid
from repro.pic.laser import LaserAntenna
from repro.pic.maxwell import FDTDSolver
from repro.pic.moving_window import MovingWindow
from repro.pic.particles import ParticleContainer


def make_grid(n=16, bc=("periodic",) * 3):
    config = GridConfig(n_cell=(n, n, n), hi=(n * 1.0e-6,) * 3,
                        field_boundary=bc, particle_boundary=bc)
    return Grid(config), config


class TestFDTDSolver:
    def test_rejects_unknown_scheme(self):
        grid, _ = make_grid(8)
        with pytest.raises(ValueError):
            FDTDSolver(grid, scheme="spectral")

    def test_zero_fields_stay_zero(self):
        grid, _ = make_grid(8)
        solver = FDTDSolver(grid, scheme="yee")
        solver.step(1.0e-16)
        assert np.all(grid.ex == 0.0)
        assert np.all(grid.bz == 0.0)

    @pytest.mark.parametrize("scheme", ["yee", "ckc"])
    def test_plane_wave_propagates_stably(self, scheme):
        grid, config = make_grid(16)
        dz = grid.cell_size[2]
        # seed a transverse plane wave E_x, B_y consistent with propagation +z
        z = (np.arange(16) + 0.5) * dz
        k = 2.0 * np.pi / (8.0 * dz)
        e0 = 1.0e6
        grid.ex[:] = np.sin(k * z)[None, None, :] * e0
        grid.by[:] = np.sin(k * z)[None, None, :] * e0 / constants.C_LIGHT
        solver = FDTDSolver(grid, scheme=scheme)
        cfl = 0.5 if scheme == "yee" else 0.9
        dt = cfl * dz / (constants.C_LIGHT * np.sqrt(3.0))
        initial_energy = grid.field_energy()
        for _ in range(20):
            solver.step(dt)
        final_energy = grid.field_energy()
        assert np.isfinite(final_energy)
        # a propagating vacuum wave conserves energy to a few percent
        assert final_energy == pytest.approx(initial_energy, rel=0.1)

    def test_current_drives_electric_field(self):
        grid, _ = make_grid(8)
        grid.jz[:] = 1.0
        solver = FDTDSolver(grid)
        dt = 1.0e-16
        solver.push_e(dt)
        expected = -dt / constants.EPSILON_0
        np.testing.assert_allclose(grid.ez, expected, rtol=1e-12)

    def test_ckc_coefficients_normalised(self):
        grid, _ = make_grid(8)
        solver = FDTDSolver(grid, scheme="ckc")
        total = solver.alpha + 4.0 * solver.beta + 4.0 * solver.gamma
        assert total == pytest.approx(1.0)


class TestBoundaries:
    def test_pec_zeroes_tangential_e(self):
        grid, config = make_grid(8, bc=("periodic", "periodic", "pec"))
        grid.ex[:] = 1.0
        grid.ey[:] = 1.0
        grid.ez[:] = 1.0
        FieldBoundaryConditions(config).apply(grid)
        assert np.all(grid.ex[:, :, 0] == 0.0)
        assert np.all(grid.ex[:, :, -1] == 0.0)
        assert np.all(grid.ey[:, :, 0] == 0.0)
        # the normal component is untouched
        assert np.all(grid.ez[:, :, 0] == 1.0)

    def test_absorbing_damps_boundary_fields(self):
        grid, config = make_grid(16, bc=("periodic", "periodic", "absorbing"))
        grid.ex[:] = 1.0
        FieldBoundaryConditions(config, damping_cells=4).apply(grid)
        assert np.all(grid.ex[:, :, 0] < 1.0)
        assert np.all(grid.ex[:, :, 8] == 1.0)   # interior untouched

    def test_periodic_axes_untouched(self):
        grid, config = make_grid(8)
        grid.ex[:] = 1.0
        FieldBoundaryConditions(config).apply(grid)
        assert np.all(grid.ex == 1.0)


class TestLaser:
    def test_injection_adds_field(self):
        grid, _ = make_grid(16)
        laser = LaserConfig(a0=2.0, wavelength=0.8e-6, waist=4.0e-6,
                            duration=5.0e-15, injection_position=2.0e-6)
        antenna = LaserAntenna(laser, grid, axis=2)
        t = antenna.t_peak  # inject at the envelope peak
        antenna.inject(grid, t, dt=1.0e-16)
        assert np.max(np.abs(grid.ex)) > 0.0
        # only the antenna plane is driven
        driven_planes = np.nonzero(np.abs(grid.ex).sum(axis=(0, 1)))[0]
        assert driven_planes.size == 1

    def test_envelope_peaks_at_t_peak(self):
        grid, _ = make_grid(8)
        antenna = LaserAntenna(LaserConfig(), grid)
        assert antenna.envelope(antenna.t_peak) == pytest.approx(1.0)
        assert antenna.envelope(0.0) < 1.0

    def test_no_injection_long_after_pulse(self):
        grid, _ = make_grid(8)
        antenna = LaserAntenna(LaserConfig(duration=1.0e-15), grid)
        antenna.inject(grid, antenna.t_peak + 100.0 * 1.0e-15, dt=1.0e-16)
        assert np.all(grid.ex == 0.0)


class TestMovingWindow:
    def _setup(self):
        config = GridConfig(n_cell=(4, 4, 8), hi=(4.0, 4.0, 8.0),
                            tile_size=(4, 4, 8),
                            particle_boundary=("periodic", "periodic", "absorbing"))
        grid = Grid(config)
        container = ParticleContainer(config, SpeciesConfig())
        return config, grid, container

    def test_disabled_window_does_nothing(self):
        _, grid, container = self._setup()
        window = MovingWindow(MovingWindowConfig(enabled=False))
        assert window.advance(grid, [container], dt=1.0, step=10) == 0

    def test_window_shifts_fields_and_origin(self):
        _, grid, container = self._setup()
        grid.ex[:, :, 3] = 7.0
        window = MovingWindow(MovingWindowConfig(enabled=True, axis=2, speed=1.0))
        old_lo = grid.lo[2]
        shift = window.advance(grid, [container], dt=2.0, step=0)
        assert shift == 2
        assert grid.lo[2] == pytest.approx(old_lo + 2.0)
        # the marked plane moved from index 3 to index 1
        assert np.all(grid.ex[:, :, 1] == 7.0)
        # the newly exposed leading slab is zero
        assert np.all(grid.ex[:, :, -2:] == 0.0)

    def test_window_drops_trailing_particles(self):
        _, grid, container = self._setup()
        container.add_particles(grid, x=np.array([0.5, 0.5]),
                                y=np.array([0.5, 0.5]), z=np.array([0.5, 7.5]))
        window = MovingWindow(MovingWindowConfig(enabled=True, axis=2, speed=1.0))
        window.advance(grid, [container], dt=1.0, step=0)
        # the particle at z=0.5 fell behind the new lower edge (1.0)
        assert container.num_particles == 1

    def test_window_injector_called(self):
        _, grid, container = self._setup()
        calls = []

        def injector(grid_, container_, z_lo, z_hi):
            calls.append((z_lo, z_hi))

        window = MovingWindow(MovingWindowConfig(enabled=True, axis=2, speed=1.0),
                              injector=injector)
        window.advance(grid, [container], dt=1.0, step=0)
        assert len(calls) == 1
        assert calls[0][1] > calls[0][0]

    def test_window_waits_for_start_step(self):
        _, grid, container = self._setup()
        window = MovingWindow(MovingWindowConfig(enabled=True, axis=2,
                                                 speed=1.0, start_step=5))
        assert window.advance(grid, [container], dt=1.0, step=0) == 0
        assert window.advance(grid, [container], dt=1.0, step=5) == 1

"""Tests for the ``repro lint`` static-analysis subsystem.

Each analyzer gets a must-flag fixture (the violation it exists to
catch) and a near-miss fixture (the closest legal construct, which must
pass).  The final class is the repository self-check: ``run_lint`` over
the real source tree must come back clean, which is what makes every
invariant the analyzers encode a tier-1 gate.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path
# module-level so PEP 563 annotations on the fixture dataclasses below
# resolve through the module globals in typing.get_type_hints
from typing import Any, Callable, Mapping, Optional, Tuple

import pytest

from repro.pipeline.effects import (
    EffectViolation,
    check_overlap_groups,
    check_stage_set,
    conflicts,
    declared_effects,
)
from repro.tools import (
    ANALYZERS,
    LintContext,
    analyzer_names,
    format_findings,
    run_lint,
)
from repro.tools.analyzers import (
    check_api_surface,
    check_backend_purity,
    check_determinism,
    check_picklable_dataclass,
    check_stage_effects,
    run_body_context_roots,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_tree(tmp_path: Path, files: dict) -> LintContext:
    """Write ``{relpath: source}`` under tmp_path and scan it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return LintContext(tmp_path)


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# backend-purity
# ----------------------------------------------------------------------

class TestBackendPurity:
    def test_flags_hot_path_allocation(self, tmp_path):
        ctx = make_tree(tmp_path, {"pic/mod.py": """
            import numpy as np

            def make():
                return np.zeros((4, 4))
        """})
        findings = check_backend_purity(ctx)
        assert len(findings) == 1
        assert findings[0].rule == "backend-purity"
        assert findings[0].path == "pic/mod.py"
        assert "np.zeros" in findings[0].message
        assert "active_backend" in findings[0].hint

    def test_near_miss_cold_path_allocation_passes(self, tmp_path):
        # same call, but the module is not in a hot-path package
        ctx = make_tree(tmp_path, {"analysis/mod.py": """
            import numpy as np

            def make():
                return np.zeros((4, 4))
        """})
        assert check_backend_purity(ctx) == []

    def test_near_miss_xp_handle_passes(self, tmp_path):
        # the fix idiom itself must not be flagged
        ctx = make_tree(tmp_path, {"pic/mod.py": """
            from repro.backend import active_backend

            def make(n):
                backend = active_backend()
                return backend.xp.ones(n), backend.zeros((n,))
        """})
        assert check_backend_purity(ctx) == []

    def test_add_at_banned_repo_wide(self, tmp_path):
        ctx = make_tree(tmp_path, {"analysis/mod.py": """
            import numpy as np

            def scatter(acc, ids, vals):
                np.add.at(acc, ids, vals)
        """})
        findings = check_backend_purity(ctx)
        assert len(findings) == 1
        assert "add.at" in findings[0].message

    def test_detects_alias_and_from_imports(self, tmp_path):
        ctx = make_tree(tmp_path, {"domain/mod.py": """
            import numpy as xyz
            from numpy import einsum

            def f(a, b):
                return xyz.empty(3), einsum("ij,j->i", a, b)
        """})
        assert len(check_backend_purity(ctx)) == 2

    def test_line_pragma_with_justification_suppresses(self, tmp_path):
        ctx = make_tree(tmp_path, {"pic/mod.py": """
            import numpy as np

            def make():
                # repro-lint: allow(backend-purity): bool mask, never on device
                return np.zeros(4)
        """})
        assert check_backend_purity(ctx) == []
        assert LintContext(tmp_path).structural_findings() == []

    def test_module_pragma_suppresses_whole_file(self, tmp_path):
        ctx = make_tree(tmp_path, {"backend/oracle.py": """
            # repro-lint: allow-module(backend-purity): reference tier
            import numpy as np

            def a():
                return np.zeros(3)

            def b():
                return np.empty(3)
        """})
        assert check_backend_purity(ctx) == []

    def test_pragma_without_justification_is_a_finding(self, tmp_path):
        ctx = make_tree(tmp_path, {"pic/mod.py": """
            import numpy as np

            def make():
                return np.zeros(4)  # repro-lint: allow(backend-purity)
        """})
        structural = ctx.structural_findings()
        assert [f.rule for f in structural] == ["pragma"]
        assert "justification" in structural[0].message
        # and the unjustified pragma does NOT suppress the violation
        assert len(check_backend_purity(ctx)) == 1


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_flags_global_random_state(self, tmp_path):
        ctx = make_tree(tmp_path, {"analysis/mod.py": """
            import numpy as np

            def noisy(n):
                np.random.seed(0)
                return np.random.rand(n), np.random.RandomState(1)
        """})
        findings = check_determinism(ctx)
        assert len(findings) == 3
        assert any("RandomState" in f.message for f in findings)
        assert all("default_rng" in f.hint for f in findings)

    def test_near_miss_seeded_generator_passes(self, tmp_path):
        ctx = make_tree(tmp_path, {"analysis/mod.py": """
            import numpy as np

            def noisy(n, seed):
                rng = np.random.default_rng(np.random.SeedSequence(seed))
                return rng.random(n)
        """})
        assert check_determinism(ctx) == []

    def test_flags_fastmath_in_njit(self, tmp_path):
        ctx = make_tree(tmp_path, {"backend/kern.py": """
            from numba import njit

            @njit(cache=True, fastmath=True)
            def kernel(a):
                return a * 2.0
        """})
        findings = check_determinism(ctx)
        assert len(findings) == 1
        assert "fastmath" in findings[0].message

    def test_near_miss_fastmath_false_passes(self, tmp_path):
        ctx = make_tree(tmp_path, {"backend/kern.py": """
            from numba import njit

            @njit(cache=True, fastmath=False)
            def kernel(a):
                return a * 2.0
        """})
        assert check_determinism(ctx) == []

    def test_flags_wall_clock_in_jitted_body(self, tmp_path):
        ctx = make_tree(tmp_path, {"analysis/kern.py": """
            import time
            from numba import njit

            @njit
            def kernel(a):
                t0 = time.perf_counter()
                return a * 2.0, t0
        """})
        findings = check_determinism(ctx)
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_wall_clock_applies_to_kernel_files_without_decorator(
            self, tmp_path):
        ctx = make_tree(tmp_path, {"backend/kernels_foo.py": """
            import time

            def kernel(a):
                return a * 2.0, time.monotonic()
        """})
        assert len(check_determinism(ctx)) == 1

    def test_near_miss_wall_clock_in_plain_function_passes(self, tmp_path):
        # timing hooks outside kernels are exactly how stages ARE timed
        ctx = make_tree(tmp_path, {"analysis/timing.py": """
            import time

            def measure(fn):
                t0 = time.perf_counter()
                fn()
                return time.perf_counter() - t0
        """})
        assert check_determinism(ctx) == []

    def test_flags_set_iteration_on_hot_path(self, tmp_path):
        ctx = make_tree(tmp_path, {"pic/mod.py": """
            def total(values):
                acc = 0.0
                for v in set(values):
                    acc += v
                return acc
        """})
        findings = check_determinism(ctx)
        assert len(findings) == 1
        assert "sorted" in findings[0].hint

    def test_near_miss_sorted_set_iteration_passes(self, tmp_path):
        ctx = make_tree(tmp_path, {"pic/mod.py": """
            def total(values):
                acc = 0.0
                for v in sorted(set(values)):
                    acc += v
                return acc
        """})
        assert check_determinism(ctx) == []


# ----------------------------------------------------------------------
# stage-effects: the effect checker itself
# ----------------------------------------------------------------------

class FakeStage:
    def __init__(self, name, reads=(), writes=(), overlap_group=None):
        self.name = name
        self.bucket = "other"
        self.reads = frozenset(reads)
        self.writes = frozenset(writes)
        if overlap_group is not None:
            self.overlap_group = overlap_group

    def run(self, ctx):  # pragma: no cover - never executed
        pass


class TestEffectChecker:
    def test_conflicts_is_hierarchical(self):
        assert conflicts("grid", "grid.currents")
        assert conflicts("grid.currents", "grid.currents")
        assert not conflicts("grid.fields", "grid.currents")
        assert not conflicts("grid", "gridlock")

    def test_missing_declaration_is_reported(self):
        class Bare:
            name = "bare"
            bucket = "other"

            def run(self, ctx):  # pragma: no cover
                pass

        assert declared_effects(Bare()) is None
        violations = check_stage_set([Bare()])
        assert [v.kind for v in violations] == ["declaration"]

    def test_unknown_resource_is_reported(self):
        stage = FakeStage("typo", reads={"grid.curents"})
        violations = check_stage_set([stage])
        assert [v.kind for v in violations] == ["vocabulary"]
        assert "grid.curents" in violations[0].message

    def test_write_after_read_hazard_is_reported(self):
        # halos is neither external nor written earlier -> hazard, and
        # the message names the later writer
        reader = FakeStage("reader", reads={"domain.halos"})
        writer = FakeStage("writer", writes={"domain.halos"})
        # drop halos from the carried set? it IS carried, so use a
        # non-carried resource instead: deposition_counters
        reader = FakeStage("reader", reads={"simulation.deposition_counters"})
        writer = FakeStage("writer",
                           writes={"simulation.deposition_counters"})
        violations = check_stage_set([reader, writer])
        assert [v.kind for v in violations] == ["hazard"]
        assert "writer" in violations[0].message

    def test_read_after_write_passes(self):
        writer = FakeStage("writer",
                           writes={"simulation.deposition_counters"})
        reader = FakeStage("reader", reads={"simulation.deposition_counters"})
        assert check_stage_set([writer, reader]) == []

    def test_step_carried_read_passes(self):
        # gather reads the previous step's fields before the solve
        # rewrites them: legal exactly because fields are step-carried
        gather = FakeStage("gather", reads={"grid.fields"})
        solve = FakeStage("solve", writes={"grid.fields"})
        assert check_stage_set([gather, solve]) == []

    def test_overlap_group_conflict_is_reported(self):
        a = FakeStage("halo", writes={"domain.halos"}, overlap_group="ov")
        b = FakeStage("interior", reads={"domain.halos"},
                      overlap_group="ov")
        violations = check_overlap_groups([a, b])
        assert [v.kind for v in violations] == ["overlap"]
        assert "interior" in violations[0].message

    def test_disjoint_overlap_group_passes(self):
        a = FakeStage("halo", writes={"domain.halos"}, overlap_group="ov")
        b = FakeStage("interior", reads={"grid.fields"},
                      writes={"containers.momentum"}, overlap_group="ov")
        assert check_overlap_groups([a, b]) == []


class TestStageEffectsAnalyzer:
    def test_run_body_scan_sees_context_roots(self):
        class S:
            def run(self, ctx):
                ctx.grid.jx[...] = 0.0
                return ctx.dt

        roots = run_body_context_roots(S.run)
        assert roots == frozenset({"grid", "dt"})

    def test_shipped_declarations_are_complete_and_hazard_free(self):
        ctx = LintContext(REPO_ROOT)
        assert check_stage_effects(ctx) == []

    def test_every_shipped_stage_declares_effects(self):
        from repro.pipeline import domain_stages, global_stages

        for stage in (*global_stages(), *domain_stages()):
            effects = declared_effects(stage)
            assert effects is not None, stage
            reads, writes = effects
            assert reads or writes, stage


# ----------------------------------------------------------------------
# spec-purity
# ----------------------------------------------------------------------

# module-level like real specs, so nested-dataclass hints resolve
@dataclasses.dataclass
class InnerSpec:
    values: Tuple[int, ...]


@dataclasses.dataclass
class GoodSpec:
    name: str
    inner: InnerSpec
    extra: Optional[Mapping] = None


class TestSpecPurity:
    def test_experiment_spec_is_pure(self):
        from repro.analysis.campaign import ExperimentSpec

        assert check_picklable_dataclass(ExperimentSpec) == []

    def test_flags_unpicklable_field_type(self):
        @dataclasses.dataclass
        class Bad:
            name: str
            hook: Optional[Callable[[int], int]] = None

        problems = check_picklable_dataclass(Bad)
        assert len(problems) == 1
        assert "Bad.hook" in problems[0]

    def test_near_miss_nested_dataclass_passes(self):
        assert check_picklable_dataclass(GoodSpec) == []

    def test_flags_any_annotation(self):
        @dataclasses.dataclass
        class Loose:
            payload: Any

        problems = check_picklable_dataclass(Loose)
        assert len(problems) == 1
        assert "Any" in problems[0]


# ----------------------------------------------------------------------
# api-drift
# ----------------------------------------------------------------------

class TestApiDrift:
    def _snapshot_ctx(self, tmp_path, snapshot_literal):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_api_surface.py").write_text(
            f"API_SURFACE = {snapshot_literal}\n")
        (tmp_path / "src").mkdir()
        return LintContext(tmp_path)

    def test_flags_drifted_all(self, tmp_path):
        # the real repro.tools exports more than this stale snapshot
        ctx = self._snapshot_ctx(
            tmp_path, "{'repro.tools': ('run_lint',)}")
        findings = check_api_surface(ctx)
        assert len(findings) == 1
        assert "drifted" in findings[0].message
        assert "added" in findings[0].message

    def test_near_miss_matching_snapshot_passes(self, tmp_path):
        import repro.tools

        names = tuple(sorted(repro.tools.__all__))
        ctx = self._snapshot_ctx(tmp_path,
                                 f"{{'repro.tools': {names!r}}}")
        assert check_api_surface(ctx) == []

    def test_missing_snapshot_is_reported(self, tmp_path):
        (tmp_path / "src").mkdir()
        ctx = LintContext(tmp_path)
        findings = check_api_surface(ctx)
        assert len(findings) == 1
        assert "missing" in findings[0].message

    def test_repo_surface_matches_snapshot(self):
        assert check_api_surface(LintContext(REPO_ROOT)) == []


# ----------------------------------------------------------------------
# driver, formatting, CLI
# ----------------------------------------------------------------------

class TestDriver:
    def test_registry_has_the_five_analyzers(self):
        assert analyzer_names() == [
            "backend-purity", "determinism", "stage-effects",
            "spec-purity", "api-drift",
        ]
        assert set(ANALYZERS) == set(analyzer_names())

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_lint(root=REPO_ROOT, rules=["nope"])

    def test_rule_selection_runs_subset(self, tmp_path):
        make_tree(tmp_path, {"src/pic/mod.py": """
            import numpy as np

            def f(values):
                np.random.seed(0)
                return np.zeros(3)
        """})
        all_findings = run_lint(root=tmp_path,
                                rules=["backend-purity", "determinism"])
        assert rules_of(all_findings) == ["backend-purity", "determinism"]
        only = run_lint(root=tmp_path, rules=["determinism"])
        assert rules_of(only) == ["determinism"]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        make_tree(tmp_path, {"src/mod.py": "def broken(:\n"})
        findings = run_lint(root=tmp_path, rules=["backend-purity"])
        assert [f.rule for f in findings] == ["parse"]

    def test_json_format_round_trips(self, tmp_path):
        make_tree(tmp_path, {"src/pic/mod.py": """
            import numpy as np

            def f():
                return np.zeros(3)
        """})
        findings = run_lint(root=tmp_path, rules=["backend-purity"])
        payload = json.loads(format_findings(findings, fmt="json"))
        assert payload["count"] == 1
        assert payload["rules"] == ["backend-purity"]
        entry = payload["findings"][0]
        assert entry["path"] == "src/pic/mod.py"
        assert entry["rule"] == "backend-purity"
        assert entry["line"] > 1
        assert entry["hint"]

    def test_table_format_mentions_location_and_count(self, tmp_path):
        make_tree(tmp_path, {"src/pic/mod.py": """
            import numpy as np

            def f():
                return np.zeros(3)
        """})
        findings = run_lint(root=tmp_path, rules=["backend-purity"])
        table = format_findings(findings, fmt="table")
        assert "src/pic/mod.py:" in table
        assert "1 finding" in table
        assert format_findings([], fmt="table") == \
            "repro lint: no findings"


class TestCli:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_lint_clean_repo_exits_zero(self):
        proc = self.run_cli("--format", "json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["count"] == 0

    def test_findings_exit_nonzero(self, tmp_path):
        (tmp_path / "src" / "pic").mkdir(parents=True)
        (tmp_path / "src" / "pic" / "mod.py").write_text(
            "import numpy as np\n\n\ndef f():\n    return np.zeros(3)\n")
        proc = self.run_cli("--root", str(tmp_path), "--rules",
                            "backend-purity")
        assert proc.returncode == 1
        assert "backend-purity" in proc.stdout

    def test_unknown_rule_exits_two(self):
        proc = self.run_cli("--rules", "nope")
        assert proc.returncode == 2
        assert "unknown lint rule" in proc.stderr

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        assert proc.stdout.split() == analyzer_names()


# ----------------------------------------------------------------------
# repository self-check (the tier-1 gate) + external toolchain
# ----------------------------------------------------------------------

class TestRepositoryIsClean:
    def test_repo_lints_clean(self):
        findings = run_lint(root=REPO_ROOT)
        assert findings == [], "\n" + format_findings(findings)

    @pytest.mark.skipif(shutil.which("ruff") is None,
                        reason="ruff not installed (CI-only toolchain)")
    def test_ruff_clean(self):
        proc = subprocess.run(["ruff", "check", "src", "tests"],
                              cwd=REPO_ROOT, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(shutil.which("mypy") is None,
                        reason="mypy not installed (CI-only toolchain)")
    def test_mypy_clean(self):
        proc = subprocess.run(["mypy"], cwd=REPO_ROOT,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

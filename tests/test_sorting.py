"""Tests for counting sort, the incremental sorter and the global sort policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GridConfig, SortingPolicyConfig, SpeciesConfig
from repro.core.counting_sort import counting_sort_permutation, counting_sort_work
from repro.core.incremental_sort import IncrementalSorter, TileSortState
from repro.core.sort_policy import GlobalSortPolicy, RankSortStats
from repro.hardware.counters import KernelCounters
from repro.pic.grid import Grid
from repro.pic.particles import ParticleContainer
from repro.pic.plasma import load_uniform_plasma


class TestCountingSort:
    def test_sorts_by_cell(self):
        cells = np.array([3, 1, 2, 1, 0])
        order, counts = counting_sort_permutation(cells, 4)
        assert np.all(np.diff(cells[order]) >= 0)
        np.testing.assert_array_equal(counts, [1, 2, 1, 1])

    def test_stability(self):
        cells = np.array([1, 1, 1])
        order, _ = counting_sort_permutation(cells, 2)
        np.testing.assert_array_equal(order, [0, 1, 2])

    def test_empty_input(self):
        order, counts = counting_sort_permutation(np.array([], dtype=int), 4)
        assert order.size == 0
        np.testing.assert_array_equal(counts, [0, 0, 0, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            counting_sort_permutation(np.array([5]), 4)
        with pytest.raises(ValueError):
            counting_sort_permutation(np.array([0]), 0)

    def test_work_estimate_positive(self):
        work = counting_sort_work(1000, 64)
        assert work["scalar_ops"] > 0
        assert work["bytes_far"] > 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=0, max_size=80))
    def test_permutation_property(self, cells):
        cells = np.asarray(cells, dtype=int)
        order, counts = counting_sort_permutation(cells, 16)
        assert np.sort(order).tolist() == list(range(len(cells)))
        assert counts.sum() == len(cells)
        assert np.all(np.diff(cells[order]) >= 0)


class TestSortPolicy:
    def _stats(self, **kwargs):
        defaults = dict(steps_since_sort=20, local_rebuilds=0, total_slots=1000,
                        empty_slots=300, last_throughput=100.0,
                        baseline_throughput=100.0)
        defaults.update(kwargs)
        stats = RankSortStats()
        for key, value in defaults.items():
            setattr(stats, key, value)
        return stats

    def test_minimum_interval_vetoes(self):
        policy = GlobalSortPolicy(SortingPolicyConfig(min_sort_interval=10))
        assert not policy.should_sort(self._stats(steps_since_sort=5,
                                                  local_rebuilds=10**6))

    def test_fixed_interval_triggers(self):
        policy = GlobalSortPolicy(SortingPolicyConfig(sort_interval=50))
        assert policy.should_sort(self._stats(steps_since_sort=50))
        assert policy.last_trigger == "fixed_interval"

    def test_rebuild_count_triggers(self):
        policy = GlobalSortPolicy(SortingPolicyConfig(sort_trigger_rebuild_count=10))
        assert policy.should_sort(self._stats(local_rebuilds=10))
        assert policy.last_trigger == "rebuild_count"

    def test_empty_ratio_triggers(self):
        policy = GlobalSortPolicy(SortingPolicyConfig(sort_trigger_empty_ratio=0.15))
        assert policy.should_sort(self._stats(empty_slots=50))
        assert policy.last_trigger == "empty_ratio"

    def test_sparse_ratio_triggers(self):
        policy = GlobalSortPolicy(SortingPolicyConfig(sort_trigger_full_ratio=0.85))
        assert policy.should_sort(self._stats(empty_slots=900))
        assert policy.last_trigger == "sparse_ratio"

    def test_perf_degradation_triggers(self):
        policy = GlobalSortPolicy(SortingPolicyConfig(sort_trigger_perf_degrad=0.8))
        assert policy.should_sort(self._stats(last_throughput=50.0))
        assert policy.last_trigger == "perf_degradation"

    def test_perf_trigger_can_be_disabled(self):
        policy = GlobalSortPolicy(
            SortingPolicyConfig(sort_trigger_perf_enable=False))
        assert not policy.should_sort(self._stats(last_throughput=50.0))

    def test_healthy_state_does_not_trigger(self):
        policy = GlobalSortPolicy()
        assert not policy.should_sort(self._stats())

    def test_ratio_trigger_boundaries(self):
        """Pin the slot-ratio semantics: both triggers compare the *empty*
        fraction against its bound with a strict inequality (the
        ``sort_trigger_full_ratio`` bound fires when the structure became
        sparse, not when occupancy is high)."""
        policy = GlobalSortPolicy(SortingPolicyConfig(
            sort_trigger_empty_ratio=0.15, sort_trigger_full_ratio=0.85))
        # exactly at either bound: no trigger (strict comparisons)
        assert not policy.should_sort(self._stats(empty_slots=150))
        assert not policy.should_sort(self._stats(empty_slots=850))
        # just below the empty bound: gap reserve exhausted -> empty_ratio
        assert policy.should_sort(self._stats(empty_slots=149))
        assert policy.last_trigger == "empty_ratio"
        # just above the full bound: mostly gaps -> sparse_ratio
        assert policy.should_sort(self._stats(empty_slots=851))
        assert policy.last_trigger == "sparse_ratio"

    def test_fill_ratio_is_complement_of_empty_ratio(self):
        stats = self._stats(total_slots=1000, empty_slots=300)
        assert stats.empty_ratio == pytest.approx(0.3)
        assert stats.fill_ratio == pytest.approx(0.7)
        # degenerate rank with no slots: defined as fully filled, no trigger
        empty = RankSortStats()
        assert empty.empty_ratio == 0.0
        assert empty.fill_ratio == 1.0

    def test_rank_stats_record_and_reset(self):
        stats = RankSortStats()
        stats.record_step(rebuilds=2, moved=10, total_slots=100, empty_slots=30,
                          throughput=5.0)
        stats.record_step(rebuilds=1, moved=5, total_slots=100, empty_slots=25,
                          throughput=4.0)
        assert stats.steps_since_sort == 2
        assert stats.local_rebuilds == 3
        assert stats.baseline_throughput == 5.0
        stats.reset()
        assert stats.steps_since_sort == 0
        assert stats.baseline_throughput == 4.0


def make_tiled_plasma():
    config = GridConfig(n_cell=(8, 8, 8), hi=(8.0e-6,) * 3, tile_size=(4, 4, 4))
    grid = Grid(config)
    species = SpeciesConfig(ppc=(2, 2, 2))
    container = ParticleContainer(config, species)
    load_uniform_plasma(grid, container, species, np.random.default_rng(3))
    return grid, container


class TestIncrementalSorter:
    def test_global_sort_establishes_cell_order(self):
        grid, container = make_tiled_plasma()
        sorter = IncrementalSorter()
        tile = container.nonempty_tiles()[0]
        rng = np.random.default_rng(0)
        tile.permute(rng.permutation(tile.num_particles))
        sorter.global_sort_tile(grid, tile)
        cells = tile.local_cell_ids(grid)
        assert np.all(np.diff(cells) >= 0)
        assert isinstance(tile.sorter, TileSortState)
        tile.sorter.gpma.check_invariants()

    def test_iteration_order_matches_gpma(self):
        grid, container = make_tiled_plasma()
        sorter = IncrementalSorter()
        tile = container.nonempty_tiles()[0]
        sorter.global_sort_tile(grid, tile)
        order = sorter.iteration_order(tile)
        cells = tile.local_cell_ids(grid)[order]
        assert np.all(np.diff(cells) >= 0)
        assert np.sort(order).tolist() == list(range(tile.num_particles))

    def test_incremental_update_tracks_moved_particles(self):
        grid, container = make_tiled_plasma()
        sorter = IncrementalSorter()
        tile = container.nonempty_tiles()[0]
        sorter.global_sort_tile(grid, tile)
        # move one particle into a different cell of the same tile
        dx = grid.cell_size[0]
        target = 0
        tile.x[target] = (tile.x[target] + 1.5 * dx) % (grid.hi[0] - grid.lo[0])
        counters = KernelCounters()
        stats = sorter.incremental_update_tile(grid, tile, counters)
        assert stats.moved_particles >= 1
        # the GPMA order is consistent again
        order = sorter.iteration_order(tile)
        cells = tile.local_cell_ids(grid)[order]
        assert np.all(np.diff(cells) >= 0)
        assert counters.phase("sort").total_events() > 0

    def test_no_moves_means_no_pending_work(self):
        grid, container = make_tiled_plasma()
        sorter = IncrementalSorter()
        tile = container.nonempty_tiles()[0]
        sorter.global_sort_tile(grid, tile)
        stats = sorter.incremental_update_tile(grid, tile)
        assert stats.moved_particles == 0
        assert stats.local_rebuilds == 0

    def test_state_rebuilt_after_particle_count_change(self):
        grid, container = make_tiled_plasma()
        sorter = IncrementalSorter()
        tile = container.nonempty_tiles()[0]
        sorter.global_sort_tile(grid, tile)
        tile.append(x=np.array([tile.x[0]]), y=np.array([tile.y[0]]),
                    z=np.array([tile.z[0]]))
        stats = sorter.incremental_update_tile(grid, tile)
        assert stats.global_sorts == 0 or stats.moved_particles == 0
        assert isinstance(tile.sorter, TileSortState)
        assert tile.sorter.num_particles == tile.num_particles

    def test_bin_population_none_without_sorter(self):
        grid, container = make_tiled_plasma()
        tile = container.nonempty_tiles()[0]
        assert IncrementalSorter.bin_population(tile) is None
        assert IncrementalSorter.iteration_order(tile) is None

    def test_empty_tile_update(self):
        grid, container = make_tiled_plasma()
        sorter = IncrementalSorter()
        empty = [t for t in container.iter_tiles() if t.num_particles == 0]
        if empty:
            stats = sorter.incremental_update_tile(grid, empty[0])
            assert stats.moved_particles == 0

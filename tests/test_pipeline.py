"""The composable step pipeline (:mod:`repro.pipeline`).

Two contracts are pinned here:

1. **Bitwise parity with the pre-refactor loops.**  The hand-wired step
   bodies that used to live in ``Simulation.step`` and
   ``DomainRuntime.step_simulation`` are replicated inline below
   (``legacy_global_step`` / ``legacy_domain_step``), and a hypothesis
   suite asserts that pipeline-routed runs are bit-identical to them —
   fields, J/rho and the energy history — over random (backend, shards,
   domain split) triples.
2. **The stage graph mechanics**: stage-set selection, stage ordering,
   list surgery (insert/replace/remove), pre/post hook invocation and
   the per-stage wall-time flow into :class:`RuntimeBreakdown`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    ExecutionConfig,
    GridConfig,
    SimulationConfig,
    SpeciesConfig,
)
from repro.pic.simulation import ReferenceDeposition, Simulation
from repro.pipeline import (
    DOMAIN_STAGE_SET,
    GLOBAL_STAGE_SET,
    BreakdownTimingHook,
    DiagnosticsStage,
    Stage,
    StageContext,
    StepPipeline,
    domain_stages,
    global_stages,
    stage_set_for,
)
from repro.workloads.lwfa import LWFAWorkload
from repro.workloads.uniform import UniformPlasmaWorkload

ALL_COMPONENTS = ("ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho")

GLOBAL_STAGE_NAMES = ("gather_push", "migrate", "moving_window", "deposit",
                      "laser", "solve", "boundary")
DOMAIN_STAGE_NAMES = ("sync_frame", "halo_exchange", "gather_push", "migrate",
                      "moving_window", "deposit", "laser", "solve", "boundary")


# ----------------------------------------------------------------------
# the pre-refactor step bodies, replicated verbatim (minus the timing
# blocks, which never touched the numerics)
# ----------------------------------------------------------------------

def legacy_global_step(sim: Simulation) -> None:
    """The hand-wired single-domain loop as it was before the pipeline."""
    grid = sim.grid
    for container in sim.containers:
        sim.pusher.push(container, grid, sim.dt, executor=sim.executor)
    for container in sim.containers:
        container.apply_boundary_conditions(grid, executor=sim.executor)
        container.redistribute(grid, executor=sim.executor)
    sim.moving_window.advance(grid, sim.containers, sim.dt, sim.step_index)
    grid.zero_currents()
    for container in sim.containers:
        counters = sim.deposition.run_step(
            grid, container, sim.config.shape_order, sim.step_index,
            executor=sim.executor,
        )
        if counters is not None:
            sim.deposition_counters.merge(counters)
    if sim.laser is not None:
        sim.laser.inject(grid, sim.time, sim.dt)
    if sim.solver is not None:
        sim.solver.step(sim.dt)
        sim.boundaries.apply(grid)
    sim.breakdown.finish_step()
    sim.step_index += 1


def legacy_domain_step(sim: Simulation) -> None:
    """The hand-wired decomposed loop as it was before the pipeline."""
    from repro.domain.halo import EM_FIELDS

    domain = sim.domain
    frame = sim.grid
    domain.sync_from_frame_once(frame)
    domain.halo.exchange(EM_FIELDS, mode="boundary")
    for container in sim.containers:
        domain.push(sim, container)
    for container in sim.containers:
        container.apply_boundary_conditions(frame, executor=sim.executor)
        container.redistribute(frame, executor=sim.executor,
                               move_recorder=domain.migration.recorder)
    sim.moving_window.advance(frame, sim.containers, sim.dt, sim.step_index)
    domain.zero_currents()
    if isinstance(sim.deposition, ReferenceDeposition):
        for container in sim.containers:
            domain.deposit_reference(sim, container)
    else:
        frame.zero_currents()
        for container in sim.containers:
            counters = sim.deposition.run_step(
                frame, container, sim.config.shape_order, sim.step_index,
                executor=sim.executor,
            )
            if counters is not None:
                sim.deposition_counters.merge(counters)
        domain.pull_currents_from_frame(frame)
    if sim.laser is not None:
        domain.inject_laser(sim)
    if domain.solvers:
        domain.solve(sim)
        domain.apply_boundaries(sim)
    sim.breakdown.finish_step()
    sim.step_index += 1


def legacy_step(sim: Simulation) -> None:
    if sim.domain is not None:
        legacy_domain_step(sim)
    else:
        legacy_global_step(sim)


def uniform_workload(domains=(1, 1, 1), backend="serial", shards=1,
                     steps=2, order=1):
    return UniformPlasmaWorkload(
        n_cell=(8, 8, 8), tile_size=(4, 4, 4), ppc=8, shape_order=order,
        max_steps=steps, domains=domains,
        execution=ExecutionConfig(backend=backend, num_shards=shards),
    )


def run_pair(workload, steps):
    """Run twin simulations: one pipeline-routed, one legacy-inlined."""
    sim_pipe = workload.build_simulation()
    sim_ref = workload.build_simulation()
    try:
        sim_pipe._record_energy()
        sim_ref._record_energy()
        for _ in range(steps):
            sim_pipe.step()
            sim_pipe._record_energy()
            legacy_step(sim_ref)
            sim_ref._record_energy()
        if sim_pipe.domain is not None:
            sim_pipe.domain.assemble(sim_pipe.grid)
            sim_ref.domain.assemble(sim_ref.grid)
        return sim_pipe, sim_ref
    finally:
        sim_pipe.shutdown()
        sim_ref.shutdown()


def assert_bitwise_equal(sim_a: Simulation, sim_b: Simulation) -> None:
    for name in ALL_COMPONENTS:
        a, b = getattr(sim_a.grid, name), getattr(sim_b.grid, name)
        assert np.array_equal(a, b), f"{name} differs from the legacy loop"
    history_a = [(r.step, r.field_energy, r.kinetic_energy)
                 for r in sim_a.energy.history]
    history_b = [(r.step, r.field_energy, r.kinetic_energy)
                 for r in sim_b.energy.history]
    assert history_a == history_b


# ----------------------------------------------------------------------
# bitwise parity: pipeline vs. the pre-refactor loops
# ----------------------------------------------------------------------

class TestLegacyParity:
    @settings(max_examples=10, deadline=None)
    @given(
        backend=st.sampled_from(["serial", "threads"]),
        shards=st.integers(min_value=1, max_value=4),
        domains=st.sampled_from([
            (1, 1, 1), (2, 1, 1), (1, 2, 1), (1, 1, 2), (2, 1, 2),
        ]),
    )
    def test_random_backend_shards_split_triples(self, backend, shards,
                                                 domains):
        """Pipeline == legacy, bit for bit, over random execution triples."""
        workload = uniform_workload(domains=domains, backend=backend,
                                    shards=shards)
        sim_pipe, sim_ref = run_pair(workload, steps=2)
        assert stage_set_for(sim_pipe) == (
            DOMAIN_STAGE_SET if domains != (1, 1, 1) else GLOBAL_STAGE_SET)
        assert_bitwise_equal(sim_pipe, sim_ref)

    def test_process_backend_parity(self):
        """The process backend (or its inline degradation) stays bitwise."""
        workload = uniform_workload(backend="processes", shards=2)
        sim_pipe, sim_ref = run_pair(workload, steps=2)
        assert_bitwise_equal(sim_pipe, sim_ref)

    def test_lwfa_parity_domain(self):
        """Laser + absorbing walls + moving window, decomposed."""
        workload = LWFAWorkload(
            n_cell=(8, 8, 32), tile_size=(4, 4, 8), ppc=1, max_steps=6,
            domains=(1, 1, 2),
            execution=ExecutionConfig(backend="threads", num_shards=2),
        )
        sim_pipe = workload.build_simulation()
        sim_ref = workload.build_simulation()
        try:
            for _ in range(6):
                sim_pipe.step()
                legacy_step(sim_ref)
            sim_pipe.domain.assemble(sim_pipe.grid)
            sim_ref.domain.assemble(sim_ref.grid)
            for name in ALL_COMPONENTS:
                assert np.array_equal(getattr(sim_pipe.grid, name),
                                      getattr(sim_ref.grid, name)), name
        finally:
            sim_pipe.shutdown()
            sim_ref.shutdown()

    def test_instrumented_strategy_parity_decomposed(self):
        """Non-reference strategies keep the global-frame fallback path."""
        from repro.baselines.configs import make_strategy

        def build(strategy):
            workload = uniform_workload(domains=(2, 1, 1))
            return Simulation(workload.build_config(), deposition=strategy)

        sim_pipe = build(make_strategy("Baseline"))
        sim_ref = build(make_strategy("Baseline"))
        for _ in range(2):
            sim_pipe.step()
            legacy_step(sim_ref)
        sim_pipe.domain.assemble(sim_pipe.grid)
        sim_ref.domain.assemble(sim_ref.grid)
        for name in ALL_COMPONENTS:
            assert np.array_equal(getattr(sim_pipe.grid, name),
                                  getattr(sim_ref.grid, name)), name
        assert (sim_pipe.deposition_counters.combined().total_events()
                == sim_ref.deposition_counters.combined().total_events())


# ----------------------------------------------------------------------
# stage-set selection and ordering
# ----------------------------------------------------------------------

class TestStageSets:
    def test_global_stage_order(self):
        sim = uniform_workload().build_simulation()
        assert sim.pipeline.name == GLOBAL_STAGE_SET
        assert sim.pipeline.stage_names() == GLOBAL_STAGE_NAMES

    def test_domain_stage_order(self):
        sim = uniform_workload(domains=(2, 1, 1)).build_simulation()
        assert sim.pipeline.name == DOMAIN_STAGE_SET
        assert sim.pipeline.stage_names() == DOMAIN_STAGE_NAMES

    def test_executor_sharded_path_shares_the_global_stage_set(self):
        serial = uniform_workload().build_simulation()
        sharded = uniform_workload(backend="threads",
                                   shards=4).build_simulation()
        try:
            assert (serial.pipeline.stage_names()
                    == sharded.pipeline.stage_names())
            assert [type(s) for s in serial.pipeline.stages] \
                == [type(s) for s in sharded.pipeline.stages]
        finally:
            sharded.shutdown()

    def test_builder_stage_factories_match_installed_sets(self):
        assert tuple(s.name for s in global_stages()) == GLOBAL_STAGE_NAMES
        assert tuple(s.name for s in domain_stages()) == DOMAIN_STAGE_NAMES

    def test_every_stage_satisfies_the_protocol(self):
        for stage in (*global_stages(), *domain_stages(),
                      DiagnosticsStage()):
            assert isinstance(stage, Stage)
            assert stage.bucket


# ----------------------------------------------------------------------
# stage-list surgery
# ----------------------------------------------------------------------

class _NoOpStage:
    bucket = "other"

    def __init__(self, name="noop", log=None):
        self.name = name
        self.log = log if log is not None else []

    def run(self, ctx):
        self.log.append(self.name)


class TestPipelineSurgery:
    def make(self):
        sim = uniform_workload().build_simulation()
        return sim.pipeline

    def test_insert_before_and_after(self):
        pipeline = self.make()
        pipeline.insert_before("deposit", _NoOpStage("pre_deposit"))
        pipeline.insert_after("deposit", _NoOpStage("post_deposit"))
        names = pipeline.stage_names()
        index = names.index("deposit")
        assert names[index - 1] == "pre_deposit"
        assert names[index + 1] == "post_deposit"

    def test_replace_and_remove(self):
        pipeline = self.make()
        old = pipeline.replace("laser", _NoOpStage("laser"))
        assert old.name == "laser" and type(old) is not _NoOpStage
        removed = pipeline.remove("moving_window")
        assert removed.name == "moving_window"
        assert "moving_window" not in pipeline.stage_names()

    def test_duplicate_names_rejected(self):
        pipeline = self.make()
        with pytest.raises(ValueError, match="duplicate stage name"):
            pipeline.append(_NoOpStage("deposit"))

    def test_replace_failure_keeps_old_stage(self):
        pipeline = self.make()
        before = pipeline.stage_names()
        with pytest.raises(TypeError):
            pipeline.replace("laser", object())
        assert pipeline.stage_names() == before

    def test_malformed_stage_rejected(self):
        pipeline = self.make()
        with pytest.raises(TypeError, match="no usable name"):
            pipeline.append(object())
        with pytest.raises(KeyError):
            pipeline.insert_before("no_such_stage", _NoOpStage())

    def test_unknown_stage_set_still_runs_custom_stages(self):
        """A pipeline is just a stage list: custom graphs run standalone."""
        sim = uniform_workload().build_simulation()
        log = []
        pipeline = StepPipeline(
            [_NoOpStage("a", log), _NoOpStage("b", log)],
            StageContext(sim), name="custom",
        )
        pipeline.run_step()
        assert log == ["a", "b"]
        assert sim.step_index == 1


# ----------------------------------------------------------------------
# hooks and per-stage timing
# ----------------------------------------------------------------------

class TestHooks:
    def test_pre_and_post_hooks_fire_per_stage_in_order(self):
        sim = uniform_workload().build_simulation()
        events = []
        sim.pipeline.add_pre_hook(
            lambda stage, ctx: events.append(("pre", stage.name)))
        sim.pipeline.add_post_hook(
            lambda stage, ctx, seconds: events.append(("post", stage.name)))
        sim.step()
        expected = []
        for name in GLOBAL_STAGE_NAMES:
            expected += [("pre", name), ("post", name)]
        assert events == expected

    def test_post_hook_receives_wall_seconds(self):
        sim = uniform_workload().build_simulation()
        seen = []
        sim.pipeline.add_post_hook(
            lambda stage, ctx, seconds: seen.append(seconds))
        sim.step()
        assert len(seen) == len(GLOBAL_STAGE_NAMES)
        assert all(s >= 0.0 for s in seen)

    def test_remove_hook(self):
        sim = uniform_workload().build_simulation()
        calls = []

        def hook(stage, ctx):
            calls.append(stage.name)

        sim.pipeline.add_pre_hook(hook)
        sim.step()
        assert calls
        assert sim.pipeline.remove_hook(hook)
        count = len(calls)
        sim.step()
        assert len(calls) == count
        assert not sim.pipeline.remove_hook(hook)

    def test_hook_context_is_live(self):
        sim = uniform_workload().build_simulation()
        seen = []
        sim.pipeline.add_pre_hook(
            lambda stage, ctx: seen.append(
                (ctx.simulation is sim, ctx.grid is sim.grid,
                 ctx.executor is sim.executor)))
        sim.step()
        assert all(all(flags) for flags in seen)


class TestBreakdownTiming:
    def test_stage_seconds_filled_per_pipeline_stage(self):
        sim = uniform_workload().build_simulation()
        sim.run(2)
        assert set(sim.breakdown.stage_seconds) == set(GLOBAL_STAGE_NAMES)
        assert all(v >= 0.0 for v in sim.breakdown.stage_seconds.values())

    def test_buckets_are_the_sum_of_their_stages(self):
        sim = uniform_workload().build_simulation()
        sim.run(2)
        seconds = sim.breakdown.seconds
        stage = sim.breakdown.stage_seconds
        assert seconds["field_gather_push"] == pytest.approx(
            stage["gather_push"])
        assert seconds["boundary_redistribute"] == pytest.approx(
            stage["migrate"] + stage["moving_window"])
        assert seconds["current_deposition"] == pytest.approx(
            stage["deposit"])
        assert seconds["field_solve"] == pytest.approx(
            stage["laser"] + stage["solve"] + stage["boundary"])

    def test_stage_rows_and_reset(self):
        sim = uniform_workload().build_simulation()
        sim.run(1)
        rows = sim.breakdown.stage_rows()
        assert [row["stage"] for row in rows] == list(GLOBAL_STAGE_NAMES)
        assert sum(row["fraction"] for row in rows) == pytest.approx(1.0)
        sim.breakdown.reset()
        assert not sim.breakdown.stage_seconds
        assert sim.breakdown.stage_rows() == []

    def test_domain_set_times_its_own_stages(self):
        sim = uniform_workload(domains=(2, 1, 1)).build_simulation()
        sim.run(1)
        assert set(sim.breakdown.stage_seconds) == set(DOMAIN_STAGE_NAMES)

    def test_timing_hook_is_detachable(self):
        sim = uniform_workload().build_simulation()
        hooks = [h for h in sim.pipeline._post_hooks
                 if isinstance(h, BreakdownTimingHook)]
        assert len(hooks) == 1
        sim.pipeline.remove_hook(hooks[0])
        sim.step()
        assert not sim.breakdown.stage_seconds


# ----------------------------------------------------------------------
# the deprecation shim
# ----------------------------------------------------------------------

class TestStepShim:
    def make(self):
        config = SimulationConfig(
            grid=GridConfig(n_cell=(8, 8, 8), hi=(8.0e-6,) * 3),
            species=(SpeciesConfig(density=1.0e24, ppc=(1, 1, 1)),),
            max_steps=2,
        )
        return Simulation(config)

    def test_plain_step_does_not_warn(self):
        sim = self.make()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sim.step()
        assert sim.step_index == 1

    def test_removed_record_energy_keyword_warns_and_is_honoured(self):
        sim = self.make()
        with pytest.warns(DeprecationWarning, match="removed"):
            sim.step(record_energy=True)
        assert sim.step_index == 1
        assert [r.step for r in sim.energy.history] == [1]

    def test_unknown_keywords_still_raise_type_error(self):
        sim = self.make()
        with pytest.raises(TypeError, match="unexpected keyword"):
            sim.step(dt=1.0e-15)
        with pytest.raises(TypeError, match="unexpected keyword"):
            sim.step(diagnostics=True)
        assert sim.step_index == 0

    def test_step_simulation_shim_routes_through_pipeline(self):
        sim = uniform_workload(domains=(2, 1, 1)).build_simulation()
        calls = []
        sim.pipeline.add_pre_hook(
            lambda stage, ctx: calls.append(stage.name))
        sim.domain.step_simulation(sim)
        assert tuple(calls) == DOMAIN_STAGE_NAMES
        assert sim.step_index == 1

"""Tests for the metrics, experiment runners and table formatters."""

import pytest

from repro.analysis.metrics import (
    ExperimentResult,
    crossover_ppc,
    particles_per_second,
    peak_efficiency_percent,
    speedup,
)
from repro.analysis.runner import (
    run_deposition_experiment,
    run_simulation_experiment,
    sweep_configurations,
)
from repro.analysis.tables import (
    format_breakdown_table,
    format_efficiency_table,
    format_kernel_table,
    format_series_table,
    format_table,
    speedup_series,
)
from repro.hardware.cost_model import CostModel, KernelTiming
from repro.workloads.uniform import UniformPlasmaWorkload


def make_result(name, total=1.0, ppc=8):
    return ExperimentResult(
        configuration=name, ppc=ppc, shape_order=1, num_particles=1000,
        steps=2, timing=KernelTiming("LX2", {"compute": total}),
    )


class TestMetrics:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)
        assert speedup(1.0, 0.0) == float("inf")

    def test_particles_per_second(self):
        assert particles_per_second(100, 2.0) == pytest.approx(50.0)
        assert particles_per_second(100, 0.0) == 0.0

    def test_peak_efficiency_percent(self):
        model = CostModel()
        timing = KernelTiming("LX2", {"compute": 1.0},
                              effective_flops=model.spec.vpu_flops_per_cycle
                              * model.spec.frequency_hz)
        assert peak_efficiency_percent(model, timing) == pytest.approx(100.0)

    def test_experiment_result_row(self):
        result = make_result("Baseline", total=2.0)
        row = result.as_row()
        assert row["configuration"] == "Baseline"
        assert row["total_s"] == pytest.approx(2.0)
        assert result.kernel_seconds_per_step == pytest.approx(1.0)
        assert result.throughput == pytest.approx(1000.0)

    def test_crossover_ppc(self):
        results = {
            1: {"opt": make_result("opt", 2.0), "base": make_result("base", 1.0)},
            8: {"opt": make_result("opt", 0.5), "base": make_result("base", 1.0)},
            64: {"opt": make_result("opt", 0.2), "base": make_result("base", 1.0)},
        }
        assert crossover_ppc(results, "opt", "base") == 8
        assert crossover_ppc({1: results[1]}, "opt", "base") is None


class TestTables:
    def test_format_table_basic(self):
        text = format_table(("a", "b"), [(1, 2.5), ("x", 0.0)])
        assert "a" in text and "x" in text
        assert len(text.splitlines()) == 4

    def test_kernel_table_contains_speedup_column(self):
        results = {"Baseline": make_result("Baseline", 2.0),
                   "MatrixPIC (FullOpt)": make_result("MatrixPIC (FullOpt)", 0.5)}
        text = format_kernel_table(results)
        assert "Baseline" in text
        assert "Speedup" in text
        assert "4.000" in text   # 2.0 / 0.5

    def test_efficiency_table(self):
        text = format_efficiency_table({"LX2 MatrixPIC": 83.1, "A800": 29.8})
        assert "LX2 MatrixPIC" in text

    def test_breakdown_table_fractions(self):
        text = format_breakdown_table({"deposition": 3.0, "push": 1.0})
        assert "deposition" in text
        assert "0.750" in text

    def test_series_table_and_speedups(self):
        series = {1: {"Baseline": 1.0, "MatrixPIC": 2.0},
                  8: {"Baseline": 4.0, "MatrixPIC": 2.0}}
        text = format_series_table(series, value_label="wall time")
        assert "wall time" in text
        ratios = speedup_series(series, "Baseline", "MatrixPIC")
        assert ratios[8] == pytest.approx(2.0)
        assert ratios[1] == pytest.approx(0.5)


class TestRunner:
    @pytest.fixture
    def tiny_workload(self):
        return UniformPlasmaWorkload(n_cell=(4, 4, 4), tile_size=(4, 4, 4),
                                     ppc=8, shape_order=1, max_steps=2)

    def test_run_deposition_experiment(self, tiny_workload):
        result = run_deposition_experiment(tiny_workload, "Baseline", steps=2)
        assert result.configuration == "Baseline"
        assert result.steps == 2
        assert result.timing.total > 0.0
        assert result.num_particles == 4 * 4 * 4 * 8
        assert result.extra["effective_flops"] > 0.0

    def test_sweep_runs_all_configurations(self, tiny_workload):
        results = sweep_configurations(tiny_workload,
                                       ("Baseline", "MatrixPIC (FullOpt)"),
                                       steps=1)
        assert set(results) == {"Baseline", "MatrixPIC (FullOpt)"}
        for result in results.values():
            assert result.timing.total > 0.0

    def test_simulation_experiment_breakdown(self, tiny_workload):
        simulation = run_simulation_experiment(tiny_workload, steps=2)
        assert simulation.step_index == 2
        assert "current_deposition" in simulation.breakdown.seconds

    def test_stage_breakdown_excludes_warmup_steps(self, tiny_workload):
        """The reported stage_seconds must cover exactly the measured
        steps, like the kernel counters (the Figure-1 style breakdowns
        built from stage_seconds used to include warmup wall-clock)."""
        # zero measured steps after a warmup: every recorded stage second
        # would have to come from the warmup contamination this fix removed
        result = run_deposition_experiment(tiny_workload, "Baseline",
                                           steps=0, warmup_steps=2)
        assert result.stage_seconds == {}
        # and a measured run still records the full stage set
        measured = run_deposition_experiment(tiny_workload, "Baseline",
                                             steps=2, warmup_steps=1)
        assert "current_deposition" in measured.stage_seconds
        assert sum(measured.stage_seconds.values()) > 0.0

    def test_breakdown_reset_clears_stages_and_steps(self, tiny_workload):
        simulation = run_simulation_experiment(tiny_workload, steps=2)
        assert simulation.breakdown.steps == 2
        simulation.breakdown.reset()
        assert simulation.breakdown.steps == 0
        assert simulation.breakdown.total == 0.0
        assert dict(simulation.breakdown.seconds) == {}

    def test_warmup_excludes_initial_global_sort(self, tiny_workload):
        with_warmup = run_deposition_experiment(tiny_workload,
                                                "MatrixPIC (FullOpt)",
                                                steps=1, warmup_steps=1)
        without = run_deposition_experiment(tiny_workload,
                                            "MatrixPIC (FullOpt)",
                                            steps=1, warmup_steps=0)
        assert with_warmup.timing.sort <= without.timing.sort

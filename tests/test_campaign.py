"""Tests for the campaign subsystem: specs, cache, parallel sweeps, CLI."""

import json
import os

import pytest

from repro._version import __version__
from repro.analysis.cache import ResultCache, canonical_json, content_key
from repro.analysis.campaign import (
    Campaign,
    ExperimentSpec,
    kind_for_workload,
    run_spec,
    spec_for_workload,
)
from repro.analysis.metrics import ExperimentResult
from repro.analysis.runner import sweep_configurations
from repro.analysis.tables import campaign_rows, format_campaign_table
from repro.cli import main
from repro.config import SortingPolicyConfig
from repro.hardware.cost_model import CostModel, KernelTiming
from repro.hardware.spec import LX2_SPEC
from repro.workloads.lwfa import LWFAWorkload
from repro.workloads.uniform import UniformPlasmaWorkload


def tiny_workload(**overrides):
    params = dict(n_cell=(4, 4, 4), tile_size=(4, 4, 4), ppc=8,
                  shape_order=1, max_steps=2)
    params.update(overrides)
    return UniformPlasmaWorkload(**params)


def tiny_spec(**overrides):
    spec = spec_for_workload(tiny_workload(), "Baseline", steps=1)
    if overrides:
        spec = ExperimentSpec.from_dict({**spec.to_dict(), **overrides})
    return spec


class TestExperimentSpec:
    def test_round_trips_through_dict(self):
        spec = tiny_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        # dict form is JSON-able (what the cache and worker pickling use)
        rebuilt = ExperimentSpec.from_dict(
            json.loads(canonical_json(spec.to_dict())))
        assert rebuilt.cache_key() == spec.cache_key()

    def test_known_workloads_are_registered(self):
        assert kind_for_workload(tiny_workload()) == "uniform"
        assert kind_for_workload(LWFAWorkload()) == "lwfa"
        assert kind_for_workload(object()) is None

    def test_early_registration_keeps_builtin_kinds(self, monkeypatch):
        """Registering a custom kind before first use must not drop the
        built-in 'uniform'/'lwfa' kinds."""
        import dataclasses

        import repro.analysis.campaign as campaign_module
        from repro.analysis.campaign import (
            register_workload_kind,
            workload_kinds,
        )

        @dataclasses.dataclass
        class CustomWorkload:
            ppc: int = 8

        # simulate a fresh interpreter where nothing touched the registry
        monkeypatch.setattr(campaign_module, "_WORKLOAD_KINDS", {})
        monkeypatch.setattr(campaign_module, "_BUILTINS_LOADED", False)
        register_workload_kind("custom", CustomWorkload)
        kinds = workload_kinds()
        assert kinds["custom"] is CustomWorkload
        assert "uniform" in kinds and "lwfa" in kinds

    def test_build_workload_reconstructs_equal_builder(self):
        workload = tiny_workload(seed=7)
        rebuilt = spec_for_workload(workload, "Baseline").build_workload()
        assert rebuilt == workload


class TestCacheKey:
    """Any change to a spec field must change its content key."""

    def test_key_is_stable(self):
        assert tiny_spec().cache_key() == tiny_spec().cache_key()

    @pytest.mark.parametrize("overrides", [
        {"configuration": "Baseline+IncrSort"},
        {"steps": 2},
        {"warmup_steps": 0},
        {"scramble": False},
    ])
    def test_key_changes_with_spec_fields(self, overrides):
        assert tiny_spec(**overrides).cache_key() != tiny_spec().cache_key()

    def test_key_changes_with_workload_params(self):
        for workload in (tiny_workload(seed=7), tiny_workload(ppc=1),
                         tiny_workload(shape_order=2)):
            changed = spec_for_workload(workload, "Baseline", steps=1)
            assert changed.cache_key() != tiny_spec().cache_key()

    def test_key_changes_with_sorting_config(self):
        changed = spec_for_workload(
            tiny_workload(), "Baseline", steps=1,
            sorting_config=SortingPolicyConfig(sort_interval=75))
        assert changed.cache_key() != tiny_spec().cache_key()

    def test_key_changes_with_cost_model(self):
        changed = spec_for_workload(
            tiny_workload(), "Baseline", steps=1,
            cost_model=CostModel(parallel_cores=4))
        assert changed.cache_key() != tiny_spec().cache_key()

    def test_max_steps_is_inert_when_steps_explicit(self):
        """With an explicit step count the workload's max_steps (only a
        default run length) must not fragment the key space; without one
        it determines the run and must stay in the key."""
        a = spec_for_workload(tiny_workload(max_steps=2), "Baseline", steps=1)
        b = spec_for_workload(tiny_workload(max_steps=9), "Baseline", steps=1)
        assert a.cache_key() == b.cache_key()
        c = spec_for_workload(tiny_workload(max_steps=2), "Baseline")
        d = spec_for_workload(tiny_workload(max_steps=9), "Baseline")
        assert c.cache_key() != d.cache_key()

    def test_explicit_defaults_share_key_with_none(self):
        """None and an explicitly passed default normalise to one key."""
        explicit = spec_for_workload(
            tiny_workload(), "Baseline", steps=1,
            sorting_config=SortingPolicyConfig(),
            cost_model=CostModel(spec=LX2_SPEC, parallel_cores=1))
        assert explicit.cache_key() == tiny_spec().cache_key()


class TestResultSerialization:
    def test_experiment_result_json_round_trip(self):
        result = run_spec(tiny_spec())
        rebuilt = ExperimentResult.from_json(
            json.loads(json.dumps(result.to_json())))
        # lossless: the JSON form (floats included) is byte-identical
        assert (canonical_json(rebuilt.to_json())
                == canonical_json(result.to_json()))
        assert rebuilt.timing.total == result.timing.total
        assert rebuilt.stage_seconds == result.stage_seconds

    def test_kernel_timing_round_trip(self):
        timing = KernelTiming("LX2", {"compute": 1.0 / 3.0, "sort": 1e-300},
                              effective_flops=7.5)
        rebuilt = KernelTiming.from_dict(
            json.loads(json.dumps(timing.to_dict())))
        assert rebuilt.seconds_by_phase == timing.seconds_by_phase
        assert rebuilt.effective_flops == timing.effective_flops
        assert rebuilt.spec_name == "LX2"


class TestCampaign:
    CONFIGS = ("Baseline", "Baseline+IncrSort")

    def test_grid_expansion_preserves_order(self):
        campaign = Campaign.from_grid(
            [tiny_workload(ppc=1), tiny_workload(ppc=8)], self.CONFIGS,
            steps=1)
        assert [s.configuration for s in campaign.specs] == list(
            self.CONFIGS) * 2
        assert [s.workload_params["ppc"] for s in campaign.specs] == [1, 1, 8, 8]

    def test_second_run_is_pure_hit_with_identical_json(self, tmp_path):
        cache_dir = str(tmp_path / "cache")

        def sweep():
            return Campaign.from_grid(
                [tiny_workload()], self.CONFIGS, steps=1,
                cache=ResultCache(cache_dir)).run()

        first = sweep()
        assert first.cache_stats.misses == len(self.CONFIGS)
        assert not any(e.cache_hit for e in first)

        second = sweep()
        assert second.cache_stats.hits == len(self.CONFIGS)
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hit_ratio == 1.0
        assert all(e.cache_hit for e in second)
        # replayed results are byte-identical to the fresh ones,
        # wall-clock fields included (they were stored, not re-measured)
        for a, b in zip(first, second):
            assert (canonical_json(a.result.to_json())
                    == canonical_json(b.result.to_json()))

    def test_parallel_results_equal_serial(self):
        serial = Campaign.from_grid([tiny_workload(ppc=1), tiny_workload()],
                                    self.CONFIGS, steps=1, jobs=1).run()
        parallel = Campaign.from_grid([tiny_workload(ppc=1), tiny_workload()],
                                      self.CONFIGS, steps=1, jobs=2).run()
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.spec == b.spec
            # everything but interpreter wall-clock must match exactly
            assert (canonical_json(a.result.deterministic_fields())
                    == canonical_json(b.result.deterministic_fields()))

    def test_submit_failure_degrades_to_serial(self, monkeypatch):
        """A pool whose submit() raises (fork blocked in the sandbox)
        must degrade to inline execution, not crash."""
        campaign = Campaign.from_grid([tiny_workload(ppc=1)], self.CONFIGS,
                                      steps=1, jobs=2)

        class FailingPool:
            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, *args):
                raise OSError("fork blocked")

        monkeypatch.setattr(campaign, "_make_pool", lambda: FailingPool())
        outcome = campaign.run()
        assert outcome.degraded
        assert len(outcome) == 2
        assert all(e.result.timing.total > 0.0 for e in outcome)

    def test_clear_sweeps_entries_and_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        spec = tiny_spec()
        cache.put(spec.cache_key(), spec.to_dict(), {"x": 1})
        orphan = tmp_path / "cache" / "ab" / "tmp1234.tmp"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text("half-written entry")
        # unrelated files in the directory must survive a clear
        foreign = tmp_path / "cache" / "important-data.json"
        foreign.write_text("{}")
        nested_foreign = tmp_path / "cache" / "ab" / "notes.json"
        nested_foreign.write_text("{}")
        assert len(cache) == 1
        assert cache.clear() == 2
        assert len(cache) == 0
        assert not orphan.exists()
        assert foreign.exists() and nested_foreign.exists()

    def test_grouped_disambiguates_colliding_workload_labels(self):
        """Two workloads with the same kind and PPC but different other
        fields must both survive grouping (no silent overwrite)."""
        outcome = Campaign.from_grid(
            [tiny_workload(shape_order=1), tiny_workload(shape_order=2)],
            ("Baseline",), steps=1).run()
        groups = outcome.grouped()
        assert len(groups) == 2
        assert "uniform/ppc=8" in groups
        orders = sorted(result.shape_order
                        for row in groups.values()
                        for result in row.values())
        assert orders == [1, 2]

    def test_unwritable_cache_dir_degrades_instead_of_crashing(self, tmp_path):
        """A cache that cannot be written must not discard computed
        results (put is best-effort, counted in write_errors)."""
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file, not a directory")
        cache = ResultCache(str(blocker / "cache"))
        outcome = Campaign([tiny_spec()], cache=cache).run()
        assert outcome.entries[0].result.timing.total > 0.0
        assert cache.stats.write_errors == 1
        assert cache.stats.writes == 0
        # the structural path problem is a plain miss, not a phantom
        # corrupt-entry eviction
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 0

    def test_duplicate_specs_compute_once_and_fan_out(self, tmp_path):
        """A grid repeating the same cell simulates it once; every
        position still gets its result."""
        cache = ResultCache(str(tmp_path / "cache"))
        outcome = Campaign([tiny_spec(), tiny_spec()], cache=cache).run()
        assert len(outcome) == 2
        assert cache.stats.writes == 1
        assert (canonical_json(outcome.entries[0].result.to_json())
                == canonical_json(outcome.entries[1].result.to_json()))
        # same dedup without a cache (identity falls back to the spec)
        no_cache = Campaign([tiny_spec(), tiny_spec()]).run()
        assert len(no_cache) == 2
        assert (no_cache.entries[0].result.to_json()
                == no_cache.entries[1].result.to_json())

    def test_cache_stats_are_per_run_deltas(self, tmp_path):
        """Each CampaignResult reports only its own run's accounting,
        even when the ResultCache object is shared across campaigns, and
        a later run never mutates an earlier result's numbers."""
        cache = ResultCache(str(tmp_path / "cache"))
        first = Campaign([tiny_spec()], cache=cache).run()
        assert first.cache_stats.misses == 1
        assert first.cache_stats.hits == 0
        second = Campaign([tiny_spec()], cache=cache).run()
        # second run: a pure hit, not 50/50 lifetime totals
        assert second.cache_stats.hits == 1
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hit_ratio == 1.0
        # lifetime counters still accumulate on the cache itself
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        # and the first result's snapshot is unchanged
        assert first.cache_stats.misses == 1 and first.cache_stats.hits == 0

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = tiny_spec()
        Campaign([spec], cache=ResultCache(cache_dir)).run()

        path = ResultCache(cache_dir).path_for(spec.cache_key())
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json at all")

        cache = ResultCache(cache_dir)
        outcome = Campaign([spec], cache=cache).run()
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        assert not outcome.entries[0].cache_hit
        assert outcome.entries[0].result.timing.total > 0.0
        # the recomputed entry replaced the corrupt file
        with open(path, "r", encoding="utf-8") as fh:
            assert json.load(fh)["key"] == spec.cache_key()

    def test_wrong_shaped_entry_counts_as_invalidating_miss(self, tmp_path):
        """An entry that parses as JSON but not as an ExperimentResult is
        evicted and accounted as a miss, never as a hit — and a result
        whose 'timing' is a list (AttributeError path) must not crash."""
        cache_dir = str(tmp_path / "cache")
        spec = tiny_spec()
        ResultCache(cache_dir).put(spec.cache_key(), spec.to_dict(),
                                   {"timing": [1, 2]})

        cache = ResultCache(cache_dir)
        outcome = Campaign([spec], cache=cache).run()
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 1
        assert not outcome.entries[0].cache_hit
        assert outcome.entries[0].result.timing.total > 0.0
        # the recomputed result replaced the bogus entry: next run hits
        rerun_cache = ResultCache(cache_dir)
        rerun = Campaign([spec], cache=rerun_cache).run()
        assert rerun_cache.stats.hits == 1
        assert rerun.entries[0].cache_hit

    def test_mid_batch_failure_preserves_completed_results(self, tmp_path):
        """A spec that raises must not discard siblings that already
        completed: their payloads are cached as they materialize."""
        cache_dir = str(tmp_path / "cache")
        good = tiny_spec()
        bad = tiny_spec(configuration="NoSuchConfiguration")
        with pytest.raises(ValueError):
            Campaign([good, bad], cache=ResultCache(cache_dir)).run()
        # the completed sibling was persisted before the crash
        rerun_cache = ResultCache(cache_dir)
        rerun = Campaign([good], cache=rerun_cache).run()
        assert rerun_cache.stats.hits == 1
        assert rerun.entries[0].cache_hit

    def test_key_mismatched_entry_is_invalidated(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = content_key({"x": 1})
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"key": "someone-else", "result": {}}, fh)
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1
        assert not os.path.exists(path)

    def test_cache_key_embeds_library_version(self, monkeypatch):
        """A version bump invalidates every stored key."""
        import repro.analysis.campaign as campaign_module

        before = tiny_spec().cache_key()
        monkeypatch.setattr(campaign_module, "__version__",
                            __version__ + ".post-test")
        assert tiny_spec().cache_key() != before

    def test_cache_key_embeds_source_fingerprint(self, monkeypatch):
        """An in-place source edit invalidates every stored key."""
        import repro.analysis.campaign as campaign_module

        before = tiny_spec().cache_key()
        assert len(campaign_module.source_fingerprint()) == 64
        monkeypatch.setattr(campaign_module, "_SOURCE_FINGERPRINT",
                            "0" * 64)
        assert tiny_spec().cache_key() != before


class TestSweepIntegration:
    def test_sweep_through_campaign_matches_configurations(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        results = sweep_configurations(tiny_workload(),
                                       ("Baseline", "Baseline+IncrSort"),
                                       steps=1, cache=cache)
        assert set(results) == {"Baseline", "Baseline+IncrSort"}
        assert cache.stats.misses == 2
        again = sweep_configurations(tiny_workload(),
                                     ("Baseline", "Baseline+IncrSort"),
                                     steps=1, cache=cache)
        assert cache.stats.hits == 2
        for name in results:
            assert (canonical_json(results[name].to_json())
                    == canonical_json(again[name].to_json()))

    def test_unregistered_workload_falls_back_to_direct_execution(self):
        class OpaqueWorkload:
            ppc = 8
            shape_order = 1
            max_steps = 1

            def build_simulation(self, deposition=None):
                return tiny_workload().build_simulation(deposition=deposition)

        results = sweep_configurations(OpaqueWorkload(), ("Baseline",),
                                       steps=1)
        assert results["Baseline"].timing.total > 0.0
        with pytest.raises(TypeError):
            sweep_configurations(OpaqueWorkload(), ("Baseline",), steps=1,
                                 jobs=2)


class TestFormatters:
    def test_campaign_table_and_rows(self, tmp_path):
        outcome = Campaign.from_grid(
            [tiny_workload()], ("Baseline",), steps=1,
            cache=ResultCache(str(tmp_path / "cache"))).run()
        text = format_campaign_table(outcome)
        assert "Baseline" in text
        assert "uniform/ppc=8" in text
        assert "cache: 0 hits, 1 misses" in text
        rows = campaign_rows(outcome)
        assert rows[0]["workload"] == "uniform/ppc=8"
        assert rows[0]["cached"] is False


class TestCLI:
    ARGS = ["campaign", "--workload", "uniform", "--n-cell", "4,4,4",
            "--tile-size", "4,4,4", "--ppc", "1,8",
            "--configurations", "Baseline,Baseline+IncrSort",
            "--steps", "1"]

    def test_campaign_cli_warm_rerun_is_pure_hit(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache"),
                            "--format", "json"]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache"]["misses"] == 4

        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache"]["hits"] == 4
        assert warm["cache"]["misses"] == 0
        assert all(r["cache_hit"] for r in warm["results"])
        # byte-identical results, cold vs warm
        assert ([r["result"] for r in warm["results"]]
                == [r["result"] for r in cold["results"]])

    def test_campaign_cli_table_and_csv(self, tmp_path, capsys):
        base = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(base + ["--format", "table"]) == 0
        table = capsys.readouterr().out
        assert "Configuration" in table and "cache:" in table
        assert main(base + ["--format", "csv"]) == 0
        csv_out = capsys.readouterr().out
        header = csv_out.splitlines()[0]
        assert "configuration" in header and "cached" in header
        assert len(csv_out.strip().splitlines()) == 1 + 4

    def test_campaign_cli_no_cache(self, capsys):
        args = ["campaign", "--workload", "uniform", "--n-cell", "4,4,4",
                "--tile-size", "4,4,4", "--ppc", "1",
                "--configurations", "Baseline", "--steps", "1",
                "--no-cache", "--format", "json"]
        assert main(args) == 0
        out = json.loads(capsys.readouterr().out)
        assert "cache" not in out
        assert not out["results"][0]["cache_hit"]

    def test_campaign_cli_rejects_unknown_configuration(self, capsys):
        assert main(["campaign", "--configurations", "NoSuchConfig",
                     "--no-cache"]) == 2

    def test_campaign_cli_rejects_nonpositive_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--jobs", "0", "--no-cache"])
        assert excinfo.value.code == 2

    def test_campaign_cli_rejects_invalid_ppc_and_steps(self, capsys):
        # PPC outside the paper's scan and not a perfect cube: clean
        # usage error, not a traceback from inside the campaign run
        assert main(["campaign", "--ppc", "5", "--no-cache"]) == 2
        assert "error" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--steps", "-3", "--no-cache"])
        assert excinfo.value.code == 2

    def test_campaign_cli_clear_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["campaign", "--workload", "uniform", "--n-cell", "4,4,4",
                "--tile-size", "4,4,4", "--ppc", "1",
                "--configurations", "Baseline", "--steps", "1",
                "--cache-dir", cache_dir, "--format", "json"]
        assert main(args) == 0
        capsys.readouterr()
        # clearing strands nothing: the rerun recomputes from scratch
        assert main(args + ["--clear-cache"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["cache"]["misses"] == 1 and out["cache"]["hits"] == 0

    def test_campaign_cli_cache_max_bytes(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = self.ARGS + ["--cache-dir", cache_dir, "--format", "json",
                            "--cache-max-bytes", "1"]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["cache"]["misses"] == 4
        assert "cache bounded to 1 bytes" in captured.err
        # a 1-byte budget evicts everything the run just stored
        assert ResultCache(cache_dir).size_stats()["entries"] == 0

    def test_campaign_cli_rejects_negative_cache_max_bytes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--cache-max-bytes", "-1", "--no-cache"])
        assert excinfo.value.code == 2

    def test_campaign_cli_rejects_empty_grid(self, capsys):
        assert main(["campaign", "--ppc", ",", "--no-cache"]) == 2
        assert main(["campaign", "--configurations", ",", "--no-cache"]) == 2

    def test_campaign_cli_rejects_shape_order_for_lwfa(self, capsys):
        assert main(["campaign", "--workload", "lwfa", "--shape-order", "3",
                     "--no-cache"]) == 2
        assert "uniform" in capsys.readouterr().err

    def test_list_configurations(self, capsys):
        assert main(["campaign", "--list-configurations"]) == 0
        out = capsys.readouterr().out
        assert "MatrixPIC (FullOpt)" in out


# ----------------------------------------------------------------------
# Cache size accounting and LRU eviction
# ----------------------------------------------------------------------

def _key(i):
    """A distinct well-formed 64-hex cache key per index."""
    return f"{i:064x}"


class TestCacheSizeAndEviction:
    def filled_cache(self, tmp_path, entries=3):
        cache = ResultCache(str(tmp_path / "cache"))
        paths = []
        for i in range(entries):
            paths.append(cache.put(_key(i), {"i": i},
                                   {"i": i, "fill": "x" * 128}))
        return cache, paths

    def test_size_stats_counts_entries_and_bytes(self, tmp_path):
        cache, paths = self.filled_cache(tmp_path)
        stats = cache.size_stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] == sum(os.path.getsize(p) for p in paths)
        assert ResultCache(str(tmp_path / "empty")).size_stats() \
            == {"entries": 0, "total_bytes": 0}

    def test_evict_removes_least_recently_used_first(self, tmp_path):
        cache, paths = self.filled_cache(tmp_path)
        now = os.path.getmtime(paths[2])
        os.utime(paths[0], (now - 100, now - 100))  # coldest
        os.utime(paths[1], (now - 50, now - 50))
        total = sum(os.path.getsize(p) for p in paths)
        newest_size = os.path.getsize(paths[2])
        evicted = cache.evict(newest_size)
        assert evicted == 2
        assert cache.get(_key(2)) is not None  # the hot entry survives
        assert cache.size_stats()["entries"] == 1
        assert cache.stats.evictions == 2
        assert cache.stats.evicted_bytes == total - newest_size
        assert "evictions" in cache.stats.as_dict()
        assert "evicted_bytes" in cache.stats.as_dict()

    def test_get_refreshes_the_lru_clock(self, tmp_path):
        cache, paths = self.filled_cache(tmp_path, entries=2)
        now = os.path.getmtime(paths[1])
        os.utime(paths[0], (now - 100, now - 100))
        assert cache.get(_key(0)) is not None  # touch: entry 0 is hot now
        os.utime(paths[1], (now - 50, now - 50))
        cache.evict(os.path.getsize(paths[0]))
        assert cache.get(_key(0)) is not None
        assert cache.get(_key(1)) is None

    def test_evict_sweeps_orphaned_tmp_files(self, tmp_path):
        cache, paths = self.filled_cache(tmp_path, entries=1)
        orphan = os.path.join(os.path.dirname(paths[0]), "stale123.tmp")
        with open(orphan, "w", encoding="utf-8") as fh:
            fh.write("half-written by a killed put")
        assert cache.evict(10**9) == 0  # under budget: entries survive
        assert not os.path.exists(orphan)  # ...but dead weight is swept
        assert cache.size_stats()["entries"] == 1

    def test_evict_rejects_negative_budget(self, tmp_path):
        cache, _paths = self.filled_cache(tmp_path, entries=1)
        with pytest.raises(ValueError):
            cache.evict(-1)

    def test_evict_to_zero_empties_the_cache(self, tmp_path):
        cache, _paths = self.filled_cache(tmp_path)
        assert cache.evict(0) == 3
        assert cache.size_stats() == {"entries": 0, "total_bytes": 0}


# ----------------------------------------------------------------------
# Concurrent writers: last-writer-wins, no torn reads
# ----------------------------------------------------------------------

def _hammer_put(cache_dir, key, writer_id, rounds):
    """Worker: repeatedly store complete payloads under one key."""
    cache = ResultCache(cache_dir)
    for n in range(rounds):
        cache.put(key, {"writer": writer_id},
                  {"writer": writer_id, "n": n, "fill": "x" * 256})


class TestConcurrentPut:
    def test_same_key_race_is_atomic_and_last_writer_wins(self, tmp_path):
        """Two processes hammering ``put`` on one key race only on the
        final rename: a concurrent reader sees either writer's complete
        payload, never a torn mix, and the last write wins wholesale."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        cache_dir = str(tmp_path / "cache")
        key = _key(7)
        writers = [ctx.Process(target=_hammer_put,
                               args=(cache_dir, key, i, 40))
                   for i in range(2)]
        for proc in writers:
            proc.start()
        reader = ResultCache(cache_dir)
        observed = 0
        while any(proc.is_alive() for proc in writers):
            entry = reader.get(key)
            if entry is None:
                continue
            observed += 1
            # a complete payload from exactly one writer — the atomic
            # rename never exposes a mix of the two
            assert entry["key"] == key
            result = entry["result"]
            assert result["writer"] in (0, 1)
            assert 0 <= result["n"] < 40
            assert result["fill"] == "x" * 256
            assert entry["spec"] == {"writer": result["writer"]}
        for proc in writers:
            proc.join()
            assert proc.exitcode == 0
        # no torn read was ever observed: get() evicts corrupt entries
        # and counts them, so a clean run pins zero invalidations
        assert reader.stats.invalidations == 0
        assert observed > 0
        # last writer wins wholesale: a final put overwrites the key
        reader.put(key, {"writer": "parent"}, {"writer": "parent"})
        final = reader.get(key)
        assert final["result"] == {"writer": "parent"}
        assert reader.size_stats()["entries"] == 1

"""Tests for the simulated MPU/VPU hardware and the cost model."""

import numpy as np
import pytest

from repro.hardware.counters import KernelCounters, PhaseCounters
from repro.hardware.cost_model import CostModel, KernelTiming, summarize_timings
from repro.hardware.mpu import MatrixUnit
from repro.hardware.spec import A800_SPEC, LX2_SPEC
from repro.hardware.vpu import VectorUnit


class TestCounters:
    def test_add_and_merge(self):
        a = PhaseCounters()
        a.add(vpu_fma=3.0, bytes_near=64.0)
        b = PhaseCounters(vpu_fma=1.0, mpu_mopa=2.0)
        a.merge(b)
        assert a.vpu_fma == 4.0
        assert a.mpu_mopa == 2.0
        assert a.bytes_near == 64.0

    def test_add_unknown_counter_raises(self):
        with pytest.raises(AttributeError):
            PhaseCounters().add(bogus=1.0)

    def test_kernel_counters_phases(self):
        counters = KernelCounters()
        counters.phase("compute").add(mpu_mopa=5.0)
        counters.phase("sort").add(scalar_ops=7.0)
        combined = counters.combined()
        assert combined.mpu_mopa == 5.0
        assert combined.scalar_ops == 7.0

    def test_kernel_counters_merge(self):
        a, b = KernelCounters(), KernelCounters()
        a.phase("compute").add(vpu_fma=1.0)
        b.phase("compute").add(vpu_fma=2.0)
        b.phase("extra").add(scalar_ops=3.0)
        a.merge(b)
        assert a.phase("compute").vpu_fma == 3.0
        assert a.phase("extra").scalar_ops == 3.0

    def test_effective_flops_property(self):
        counters = KernelCounters()
        counters.phase("compute").add(effective_flops=100.0)
        counters.phase("preprocess").add(effective_flops=50.0)
        assert counters.effective_flops == 150.0

    def test_total_events_excludes_bytes(self):
        c = PhaseCounters(vpu_fma=2.0, bytes_near=1000.0, effective_flops=99.0)
        assert c.total_events() == 2.0


class TestVectorUnit:
    def test_fma_counts_instructions(self):
        counters = PhaseCounters()
        vpu = VectorUnit(lanes=8, counters=counters)
        a = np.arange(20.0)
        result = vpu.fma(a, a, a)
        np.testing.assert_allclose(result, a * a + a)
        assert counters.vpu_fma == 3.0   # ceil(20 / 8)

    def test_scatter_add_numerics(self):
        counters = PhaseCounters()
        vpu = VectorUnit(counters=counters)
        target = np.zeros(4)
        vpu.scatter_add(target, np.array([1, 1, 3]), np.array([2.0, 3.0, 4.0]))
        np.testing.assert_allclose(target, [0.0, 5.0, 0.0, 4.0])
        assert counters.vpu_gather_scatter == 1.0

    def test_atomic_scatter_add_counts_conflicts(self):
        counters = PhaseCounters()
        vpu = VectorUnit(lanes=4, counters=counters)
        target = np.zeros(8)
        # all four lanes hit the same index -> 3 conflicts in the vector
        vpu.atomic_scatter_add(target, np.array([2, 2, 2, 2]),
                               np.ones(4))
        assert target[2] == pytest.approx(4.0)
        assert counters.atomic_updates == 4.0
        assert counters.atomic_conflicts == 3.0

    def test_gather(self):
        vpu = VectorUnit()
        out = vpu.gather(np.array([10.0, 20.0, 30.0]), np.array([2, 0]))
        np.testing.assert_allclose(out, [30.0, 10.0])

    def test_select_and_compare(self):
        vpu = VectorUnit()
        mask = vpu.compare(np.array([1, 2, 3]), np.array([2, 2, 2]), op="lt")
        out = vpu.select(mask, np.array([9, 9, 9]), np.array([0, 0, 0]))
        np.testing.assert_array_equal(out, [9, 0, 0])

    def test_bytes_charged_near_vs_far(self):
        counters = PhaseCounters()
        vpu = VectorUnit(counters=counters)
        vpu.load(np.zeros(8), far=False)
        vpu.load(np.zeros(8), far=True)
        assert counters.bytes_near == 64.0
        assert counters.bytes_far == 64.0

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            VectorUnit(lanes=0)


class TestMatrixUnit:
    def test_single_mopa_outer_product(self):
        mpu = MatrixUnit()
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0, 5.0])
        mpu.mopa(a, b)
        tile = mpu.tile
        np.testing.assert_allclose(tile[:2, :3], np.outer(a, b))
        assert np.all(tile[2:, :] == 0.0)
        assert mpu.counters.mpu_mopa == 1.0

    def test_mopa_accumulates(self):
        mpu = MatrixUnit()
        mpu.mopa(np.ones(2), np.ones(2))
        mpu.mopa(np.ones(2), np.ones(2))
        assert mpu.tile[0, 0] == pytest.approx(2.0)

    def test_mopa_rejects_oversized_operands(self):
        mpu = MatrixUnit(rows=4, cols=4)
        with pytest.raises(ValueError):
            mpu.mopa(np.ones(5), np.ones(2))

    def test_mopa_batch_matches_sequential(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(6, 4))
        b = rng.normal(size=(6, 8))
        sequential = MatrixUnit()
        for i in range(6):
            sequential.mopa(a[i], b[i])
        batched = MatrixUnit()
        batched.mopa_batch(a, b)
        np.testing.assert_allclose(batched.tile, sequential.tile)
        assert batched.counters.mpu_mopa == 6.0

    def test_zero_tile_and_read(self):
        mpu = MatrixUnit()
        mpu.mopa(np.ones(8), np.ones(8))
        mpu.zero_tile()
        assert np.all(mpu.read_tile() == 0.0)
        assert mpu.counters.mpu_tile_moves == 2.0

    def test_read_subtile_bounds(self):
        mpu = MatrixUnit()
        with pytest.raises(ValueError):
            mpu.read_tile(9, 2)


class TestSpecs:
    def test_lx2_mpu_is_4x_vpu(self):
        assert LX2_SPEC.mpu_flops_per_cycle == pytest.approx(
            4.0 * LX2_SPEC.vpu_flops_per_cycle)

    def test_a800_has_no_mpu_path(self):
        assert A800_SPEC.mpu_flops_per_cycle == 0.0

    def test_peak_flops_all_cores(self):
        assert LX2_SPEC.peak_flops_all_cores == pytest.approx(
            LX2_SPEC.peak_flops * LX2_SPEC.cores)


class TestCostModel:
    def test_vpu_mpu_streams_overlap(self):
        model = CostModel(LX2_SPEC)
        counters = PhaseCounters(vpu_fma=100.0, mpu_mopa=10.0)
        # 100 VPU cycles vs 20 MPU cycles -> the VPU stream dominates
        assert model.phase_cycles(counters) == pytest.approx(100.0)

    def test_memory_bound_phase(self):
        model = CostModel(LX2_SPEC)
        counters = PhaseCounters(vpu_fma=1.0, bytes_far=1.0e6)
        assert model.phase_cycles(counters) == pytest.approx(
            1.0e6 / LX2_SPEC.bytes_per_cycle_far)

    def test_timing_phases_and_total(self):
        model = CostModel(LX2_SPEC)
        counters = KernelCounters()
        counters.phase("preprocess").add(vpu_fma=1.3e9)   # one second of FMA
        counters.phase("compute").add(mpu_mopa=0.65e9)    # one second of MOPA
        timing = model.timing(counters)
        assert timing.preprocess == pytest.approx(1.0)
        assert timing.compute == pytest.approx(1.0)
        assert timing.total == pytest.approx(2.0)

    def test_parallel_cores_divide_time(self):
        counters = KernelCounters()
        counters.phase("compute").add(vpu_fma=1.3e9)
        single = CostModel(LX2_SPEC, parallel_cores=1).timing(counters)
        multi = CostModel(LX2_SPEC, parallel_cores=4).timing(counters)
        assert multi.total == pytest.approx(single.total / 4.0)

    def test_speedup(self):
        ref = KernelTiming("LX2", {"compute": 2.0})
        opt = KernelTiming("LX2", {"compute": 1.0})
        assert CostModel.speedup(ref, opt) == pytest.approx(2.0)

    def test_peak_efficiency_bounds(self):
        model = CostModel(LX2_SPEC)
        counters = KernelCounters()
        # a kernel that does nothing but useful FMA at full VPU rate
        counters.phase("compute").add(vpu_fma=1.0e6,
                                      effective_flops=1.0e6 * 16.0)
        timing = model.timing(counters)
        assert model.peak_efficiency(timing, reference="vpu") == pytest.approx(1.0)
        assert model.peak_efficiency(timing, reference="max") == pytest.approx(0.25)

    def test_peak_efficiency_unknown_reference(self):
        model = CostModel(LX2_SPEC)
        with pytest.raises(ValueError):
            model.peak_efficiency(KernelTiming("LX2", {"compute": 1.0}), reference="gpu")

    def test_timing_merge_and_scale(self):
        t1 = KernelTiming("LX2", {"compute": 1.0, "sort": 0.5}, effective_flops=10.0)
        t2 = KernelTiming("LX2", {"compute": 2.0}, effective_flops=5.0)
        t1.merge(t2)
        assert t1.total == pytest.approx(3.5)
        assert t1.effective_flops == 15.0
        scaled = t1.scaled(2.0)
        assert scaled.total == pytest.approx(7.0)

    def test_summarize_timings(self):
        rows = summarize_timings({"a": KernelTiming("LX2", {"compute": 1.0})})
        assert rows["a"]["total"] == pytest.approx(1.0)

    def test_invalid_parallel_cores(self):
        with pytest.raises(ValueError):
            CostModel(LX2_SPEC, parallel_cores=0)

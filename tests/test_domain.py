"""Domain decomposition (:mod:`repro.domain`): geometry, halo exchange,
seam reduction, migration, and the bitwise parity contract.

The contract under test: for any ``(px, py, pz)`` split, any executor
backend and a fixed shard count, a decomposed run is **bitwise
identical** to the single-domain run — every field component, J/rho and
the energy history.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_plasma
from repro.config import (
    DomainConfig,
    ExecutionConfig,
    GridConfig,
    SimulationConfig,
    SpeciesConfig,
)
from repro.domain.decomposition import Decomposition
from repro.domain.halo import EM_FIELDS, HaloExchange
from repro.pic.deposition.reference import (
    deposit_reference,
    deposit_rho_reference,
)
from repro.pic.grid import Grid
from repro.pic.maxwell import FDTDSolver
from repro.pic.simulation import Simulation
from repro.workloads.lwfa import LWFAWorkload
from repro.workloads.uniform import UniformPlasmaWorkload

ALL_COMPONENTS = ("ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho")


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def run_uniform(domains, *, backend="serial", shards=1, steps=3, order=1,
                n_cell=(8, 8, 8), tile=(4, 4, 4), ppc=8, thermal=None):
    """Run the uniform workload; returns the simulation (fields assembled)."""
    kwargs = {} if thermal is None else {"thermal_velocity": thermal}
    workload = UniformPlasmaWorkload(
        n_cell=n_cell, tile_size=tile, ppc=ppc, shape_order=order,
        max_steps=steps, domains=domains,
        execution=ExecutionConfig(backend=backend, num_shards=shards),
        **kwargs,
    )
    simulation = workload.build_simulation()
    try:
        simulation.run(steps=steps, record_energy=True)
        for container in simulation.containers:
            if simulation.domain is not None:
                simulation.domain.deposit_rho(simulation, container)
            else:
                deposit_rho_reference(simulation.grid, container,
                                      order, executor=simulation.executor)
        if simulation.domain is not None:
            simulation.domain.assemble(simulation.grid)
        return simulation
    finally:
        simulation.shutdown()


def run_lwfa(domains, *, backend="serial", shards=1, steps=12):
    """Run the LWFA workload (laser + absorbing walls + moving window)."""
    workload = LWFAWorkload(
        n_cell=(8, 8, 32), tile_size=(4, 4, 8), ppc=1, max_steps=steps,
        domains=domains,
        execution=ExecutionConfig(backend=backend, num_shards=shards),
    )
    simulation = workload.build_simulation()
    try:
        simulation.run(steps=steps, record_energy=True)
        if simulation.domain is not None:
            simulation.domain.assemble(simulation.grid)
        return simulation
    finally:
        simulation.shutdown()


def assert_bitwise_equal(sim_a: Simulation, sim_b: Simulation,
                         components=ALL_COMPONENTS) -> None:
    """Fields, currents and energy history must match bit for bit."""
    for name in components:
        a = getattr(sim_a.grid, name)
        b = getattr(sim_b.grid, name)
        assert np.array_equal(a, b), (
            f"{name} differs (max abs diff "
            f"{float(np.max(np.abs(a - b)))!r})"
        )
    history_a = [(r.step, r.field_energy, r.kinetic_energy)
                 for r in sim_a.energy.history]
    history_b = [(r.step, r.field_energy, r.kinetic_energy)
                 for r in sim_b.energy.history]
    assert history_a == history_b


# ----------------------------------------------------------------------
# decomposition geometry
# ----------------------------------------------------------------------

class TestDecomposition:
    def test_tile_aligned_partition(self):
        config = GridConfig(n_cell=(8, 8, 8), tile_size=(4, 4, 4))
        decomp = Decomposition(config, (2, 1, 2), halo=1)
        assert decomp.num_domains == 4
        # every tile owned exactly once, interiors tile the grid
        owners = decomp.tile_owner
        assert owners.shape[0] == 8
        covered = np.zeros(config.n_cell, dtype=int)
        for sub in decomp.subdomains:
            covered[sub.global_slices] += 1
            assert sub.slab_shape == tuple(
                d + 2 for d in sub.interior_shape)
        assert np.all(covered == 1)

    def test_ragged_tiles(self):
        # 10 cells in tiles of 4 -> tiles of 4, 4, 2 along the axis
        config = GridConfig(n_cell=(10, 4, 4), tile_size=(4, 4, 4))
        decomp = Decomposition(config, (3, 1, 1), halo=2)
        windows = decomp.axis_windows(0)
        assert windows == [(0, 4), (4, 8), (8, 10)]

    def test_rejects_more_domains_than_tiles(self):
        config = GridConfig(n_cell=(8, 8, 8), tile_size=(4, 4, 4))
        with pytest.raises(ValueError, match="tile-aligned"):
            Decomposition(config, (4, 1, 1), halo=1)

    def test_simulation_rejects_bad_split(self):
        grid = GridConfig(n_cell=(8, 8, 8), hi=(1e-5,) * 3,
                          tile_size=(4, 4, 4))
        config = SimulationConfig(
            grid=grid, species=(SpeciesConfig(),), max_steps=1,
            domain=DomainConfig(domains=(8, 1, 1)),
        )
        with pytest.raises(ValueError, match="tile-aligned"):
            Simulation(config, load_plasma=False)

    def test_halo_sizing_follows_shape_order(self):
        assert DomainConfig().halo_for_order(1) == 1
        assert DomainConfig().halo_for_order(3) == 3
        assert DomainConfig(halo=5).halo_for_order(1) == 5


# ----------------------------------------------------------------------
# halo exchange against the global wrap/clamp oracle
# ----------------------------------------------------------------------

def _random_decomposed_fields(rng, n_cell, tile, domains, halo,
                              field_boundary):
    """A frame grid with random E/B plus slabs holding the interiors."""
    config = GridConfig(n_cell=n_cell, hi=tuple(1e-5 * n for n in n_cell),
                        tile_size=tile, field_boundary=field_boundary,
                        particle_boundary=field_boundary)
    frame = Grid(config)
    for name in EM_FIELDS:
        getattr(frame, name)[...] = rng.standard_normal(frame.shape)
    decomp = Decomposition(config, domains, halo)
    decomp.build_slabs(frame)
    for sub in decomp.subdomains:
        for name in EM_FIELDS:
            sub.interior_view(getattr(sub.slab, name))[...] = \
                getattr(frame, name)[sub.global_slices]
    return frame, decomp


@pytest.mark.parametrize("mode", ["wrap", "boundary"])
@pytest.mark.parametrize("field_boundary", [
    ("periodic", "periodic", "periodic"),
    ("periodic", "periodic", "absorbing"),
])
def test_halo_exchange_matches_global_indexing(mode, field_boundary):
    """Every ghost cell equals the globally wrapped/clamped value."""
    rng = np.random.default_rng(3)
    frame, decomp = _random_decomposed_fields(
        rng, (8, 6, 8), (4, 3, 2), (2, 2, 4), halo=3, field_boundary=field_boundary)
    exchange = HaloExchange(decomp, frame.periodic)
    exchange.exchange(EM_FIELDS, mode=mode)
    for sub in decomp.subdomains:
        idx = []
        for a in range(3):
            g = sub.origin[a] + np.arange(sub.slab_shape[a])
            n = frame.shape[a]
            if mode == "wrap" or frame.periodic[a]:
                idx.append(np.mod(g, n))
            else:
                idx.append(np.clip(g, 0, n - 1))
        for name in EM_FIELDS:
            expected = getattr(frame, name)[np.ix_(*idx)]
            assert np.array_equal(getattr(sub.slab, name), expected), \
                (name, sub.index)


# ----------------------------------------------------------------------
# deposition: ghost/seam reduction vs the global-array oracle
# ----------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    split=st.tuples(st.integers(1, 2), st.integers(1, 2), st.integers(1, 4)),
    order=st.sampled_from([1, 2, 3]),
    seed=st.integers(0, 10_000),
)
def test_seam_reduction_matches_global_oracle(split, order, seed):
    """Halo deposition + seam reduction == the global-array deposition.

    Random subdomain splits — including splits thinner than the stencil
    support (two-cell subdomains under the four-node QSP stencil) — must
    reproduce the single-array J and rho bit for bit.
    """
    config = GridConfig(n_cell=(4, 4, 8), hi=(4e-6, 4e-6, 8e-6),
                        tile_size=(2, 2, 2))
    grid, container = make_plasma(config, ppc=(1, 1, 2), seed=seed)
    sim_config = SimulationConfig(
        grid=config, species=(container.species,), shape_order=order,
        max_steps=0, domain=DomainConfig(domains=split),
    )
    simulation = Simulation(sim_config, load_plasma=False)
    simulation.containers = [container]
    try:
        if simulation.domain is None:
            return  # (1, 1, 1) draws exercise nothing
        deposit_reference(grid, container, order)
        deposit_rho_reference(grid, container, order)
        runtime = simulation.domain
        runtime.zero_currents()
        runtime.zero_charge()
        runtime.deposit_reference(simulation, container)
        runtime.deposit_rho(simulation, container)
        runtime.assemble(simulation.grid)
        for name in ("jx", "jy", "jz", "rho"):
            assert np.array_equal(getattr(simulation.grid, name),
                                  getattr(grid, name)), name
    finally:
        simulation.shutdown()


# ----------------------------------------------------------------------
# end-to-end bitwise parity
# ----------------------------------------------------------------------

class TestStepParity:
    def test_serial_2x1x2(self):
        assert_bitwise_equal(run_uniform((1, 1, 1)), run_uniform((2, 1, 2)))

    def test_initial_field_on_frame_grid_is_honoured(self):
        """A field imposed on ``sim.grid`` after construction must enter
        the decomposed state (slabs are seeded lazily, not at init)."""
        def build(domains):
            workload = UniformPlasmaWorkload(
                n_cell=(8, 8, 8), tile_size=(4, 4, 4), ppc=8, max_steps=3,
                domains=domains)
            simulation = workload.build_simulation()
            try:
                rng = np.random.default_rng(11)
                simulation.grid.ez[...] = 1e3 * rng.standard_normal(
                    simulation.grid.shape)
                simulation.run(steps=3, record_energy=True)
                if simulation.domain is not None:
                    simulation.domain.assemble(simulation.grid)
                return simulation
            finally:
                simulation.shutdown()

        sim_a, sim_b = build((1, 1, 1)), build((2, 1, 2))
        assert sim_a.energy.history[0].field_energy > 0.0
        assert_bitwise_equal(sim_a, sim_b,
                             components=("ex", "ey", "ez", "bx", "by", "bz",
                                         "jx", "jy", "jz"))

    def test_threads_backend_fixed_shards(self):
        assert_bitwise_equal(
            run_uniform((1, 1, 1), backend="threads", shards=4),
            run_uniform((2, 2, 1), backend="threads", shards=4),
        )

    def test_process_backend_fixed_shards(self):
        assert_bitwise_equal(
            run_uniform((1, 1, 1), backend="processes", shards=2, steps=2),
            run_uniform((1, 2, 2), backend="processes", shards=2, steps=2),
        )

    def test_qsp_order_with_thin_subdomains(self):
        # nz tiles of 2 cells -> 4 subdomains of 2 cells < QSP support 4
        assert_bitwise_equal(
            run_uniform((1, 1, 1), order=3, tile=(8, 8, 2)),
            run_uniform((1, 1, 4), order=3, tile=(8, 8, 2)),
        )

    def test_tsc_order(self):
        assert_bitwise_equal(
            run_uniform((1, 1, 1), order=2),
            run_uniform((2, 1, 2), order=2),
        )

    def test_every_backend_agrees_across_splits(self):
        reference = run_uniform((1, 1, 1), backend="serial", shards=2,
                                steps=2)
        for backend in ("serial", "threads"):
            for domains in ((2, 1, 1), (2, 2, 2)):
                assert_bitwise_equal(
                    reference,
                    run_uniform(domains, backend=backend, shards=2, steps=2),
                )


class TestLWFAParity:
    """Seam-crossing laser + wakefield + moving window + absorbing walls."""

    def test_longitudinal_split_crosses_laser(self):
        # the laser plane and the wake cross the z seams of a 1x1x2 split
        assert_bitwise_equal(run_lwfa((1, 1, 1)), run_lwfa((1, 1, 2)))

    def test_transverse_and_longitudinal_split_threads(self):
        assert_bitwise_equal(
            run_lwfa((1, 1, 1), backend="threads", shards=2),
            run_lwfa((2, 1, 2), backend="threads", shards=2),
        )

    def test_window_advanced(self):
        sim = run_lwfa((1, 1, 4), steps=16)
        assert sim.moving_window.total_shift_cells > 0


class TestPECBoundary:
    def test_pec_walls_decomposed(self):
        grid = GridConfig(n_cell=(8, 8, 8), hi=(8e-6,) * 3,
                          tile_size=(4, 4, 4),
                          field_boundary=("periodic", "periodic", "pec"),
                          particle_boundary=("periodic", "periodic",
                                             "absorbing"))
        def build(domains):
            config = SimulationConfig(
                grid=grid, species=(SpeciesConfig(ppc=(2, 2, 2)),),
                max_steps=4, domain=DomainConfig(domains=domains),
            )
            simulation = Simulation(config)
            try:
                simulation.run(record_energy=True)
                if simulation.domain is not None:
                    simulation.domain.assemble(simulation.grid)
                return simulation
            finally:
                simulation.shutdown()

        sim_a, sim_b = build((1, 1, 1)), build((2, 1, 2))
        assert_bitwise_equal(sim_a, sim_b,
                             components=("ex", "ey", "ez", "bx", "by", "bz",
                                         "jx", "jy", "jz"))
        # tangential E vanishes on the z walls in the decomposed run too
        assert np.all(sim_b.grid.ex[:, :, 0] == 0.0)
        assert np.all(sim_b.grid.ey[:, :, -1] == 0.0)


# ----------------------------------------------------------------------
# migration accounting
# ----------------------------------------------------------------------

class TestMigration:
    def test_cross_subdomain_moves_counted(self):
        from repro import constants

        sim = run_uniform((2, 1, 2), steps=6,
                          thermal=0.4 * constants.C_LIGHT)
        stats = sim.domain.migration
        # thermal plasma on a 4-tile-per-axis grid migrates across seams
        assert stats.moved_particles > 0
        assert 0 < stats.migrated_particles <= stats.moved_particles
        assert stats.pair_counts.sum() == stats.migrated_particles
        assert np.all(np.diag(stats.pair_counts) == 0)

    def test_migration_deterministic_across_backends(self):
        a = run_uniform((2, 1, 2), backend="serial", shards=2, steps=3)
        b = run_uniform((2, 1, 2), backend="threads", shards=2, steps=3)
        assert (a.domain.migration.migrated_particles
                == b.domain.migration.migrated_particles)
        assert np.array_equal(a.domain.migration.pair_counts,
                              b.domain.migration.pair_counts)


# ----------------------------------------------------------------------
# decomposed field solve on static fields
# ----------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(
    split=st.tuples(st.integers(1, 2), st.integers(1, 3), st.integers(1, 2)),
    scheme=st.sampled_from(["yee", "ckc"]),
    seed=st.integers(0, 1000),
)
def test_decomposed_solve_matches_global(split, scheme, seed):
    """Halo-exchanged per-slab FDTD == the global roll-based solver."""
    rng = np.random.default_rng(seed)
    frame, decomp = _random_decomposed_fields(
        rng, (6, 6, 4), (2, 2, 2), split, halo=1,
        field_boundary=("periodic",) * 3)
    for name in ("jx", "jy", "jz"):
        getattr(frame, name)[...] = rng.standard_normal(frame.shape)
        for sub in decomp.subdomains:
            sub.interior_view(getattr(sub.slab, name))[...] = \
                getattr(frame, name)[sub.global_slices]
    exchange = HaloExchange(decomp, frame.periodic)
    solvers = [FDTDSolver(sub.slab, scheme=scheme)
               for sub in decomp.subdomains]
    global_solver = FDTDSolver(frame, scheme=scheme)

    dt = 1.0e-16
    reference = Grid(frame.config)
    reference.copy_fields_from(frame)
    FDTDSolver(reference, scheme=scheme).step(dt)

    exchange.exchange(("ex", "ey", "ez"), mode="wrap")
    for solver in solvers:
        solver.push_b(0.5 * dt)
    exchange.exchange(("bx", "by", "bz"), mode="wrap")
    for solver in solvers:
        solver.push_e(dt)
    exchange.exchange(("ex", "ey", "ez"), mode="wrap")
    for solver in solvers:
        solver.push_b(0.5 * dt)

    for sub in decomp.subdomains:
        for name in EM_FIELDS:
            assert np.array_equal(
                sub.interior_view(getattr(sub.slab, name)),
                getattr(reference, name)[sub.global_slices],
            ), (name, sub.index)
    del global_solver


# ----------------------------------------------------------------------
# instrumented deposition strategies fall back to the frame path
# ----------------------------------------------------------------------

class _FrameStrategy:
    """Minimal non-reference strategy: the reference kernel, renamed."""

    name = "FrameFallback"

    def run_step(self, grid, container, order, step, executor=None):
        deposit_reference(grid, container, order, executor=executor)
        return None


def test_custom_strategy_runs_on_frame_and_matches():
    def build(domains):
        workload = UniformPlasmaWorkload(
            n_cell=(8, 8, 8), tile_size=(4, 4, 4), ppc=8, max_steps=3,
            domains=domains)
        simulation = workload.build_simulation(deposition=_FrameStrategy())
        try:
            simulation.run(steps=3, record_energy=True)
            if simulation.domain is not None:
                simulation.domain.assemble(simulation.grid)
            return simulation
        finally:
            simulation.shutdown()

    assert_bitwise_equal(build((1, 1, 1)), build((2, 2, 1)),
                         components=("ex", "ey", "ez", "bx", "by", "bz",
                                     "jx", "jy", "jz"))

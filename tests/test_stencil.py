"""Property and regression suite for the flat-index stencil engine.

The engine (:mod:`repro.pic.stencil`) replaces every ``np.add.at`` stencil
loop with single-pass ``np.bincount`` accumulation.  These tests pin it
against an ``np.add.at`` oracle (the historical triple-loop formulation)
over random positions — including periodic-wrap indices, clamped open
boundaries, far out-of-domain fallback positions and empty batches — and
assert that the executor backends remain bitwise identical through the
new path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import BackendConfig, kernel_registry, use_backend
from repro.config import GridConfig
from repro.exec import (
    ProcessShardExecutor,
    SerialExecutor,
    ThreadTileExecutor,
)
from repro.core.rhocell import RhocellBuffer
from repro.hardware.vpu import VectorUnit
from repro.pic.deposition.reference import (
    deposit_reference,
    deposit_rho_reference,
)
from repro.pic.grid import ScratchGridPool, scratch_grids
from repro.pic.shapes import shape_factors, shape_support
from repro.pic.stencil import (
    StencilOperator,
    cell_block_ids,
    flat_node_ids,
    scatter_flat,
    wrap_axis_indices,
)

from helpers import make_plasma


# ----------------------------------------------------------------------
# the np.add.at oracle (the historical formulation, kept only here)
# ----------------------------------------------------------------------
def oracle_scatter(shape, periodic, xi, yi, zi, order, amplitude):
    """Triple-loop np.add.at scatter — the reference the engine replaced."""
    out = np.zeros(shape)
    bx, wx = shape_factors(xi, order)
    by, wy = shape_factors(yi, order)
    bz, wz = shape_factors(zi, order)
    support = shape_support(order)
    for i in range(support):
        gx = wrap_axis_indices(bx + i, shape[0], periodic[0])
        for j in range(support):
            gy = wrap_axis_indices(by + j, shape[1], periodic[1])
            wij = wx[:, i] * wy[:, j]
            for k in range(support):
                gz = wrap_axis_indices(bz + k, shape[2], periodic[2])
                # product association matches the historical kernel
                # (w = wij * wz, then amplitude * w), so single-contribution
                # nodes are bitwise identical to the engine
                np.add.at(out, (gx, gy, gz), amplitude * (wij * wz[:, k]))
    return out


def oracle_gather(shape, periodic, field, xi, yi, zi, order):
    """Triple-loop gather — the adjoint oracle."""
    bx, wx = shape_factors(xi, order)
    by, wy = shape_factors(yi, order)
    bz, wz = shape_factors(zi, order)
    support = shape_support(order)
    result = np.zeros(xi.shape[0])
    for i in range(support):
        gx = wrap_axis_indices(bx + i, shape[0], periodic[0])
        for j in range(support):
            gy = wrap_axis_indices(by + j, shape[1], periodic[1])
            wij = wx[:, i] * wy[:, j]
            for k in range(support):
                gz = wrap_axis_indices(bz + k, shape[2], periodic[2])
                result += wij * wz[:, k] * field[gx, gy, gz]
    return result


def _random_batch(rng, shape, n, out_of_domain=False):
    """Grid-normalised positions; optionally far outside the domain."""
    lo, hi = (-1.5 * max(shape), 2.5 * max(shape)) if out_of_domain \
        else (0.0, 1.0)
    xi = rng.uniform(lo, hi if out_of_domain else shape[0], n)
    yi = rng.uniform(lo, hi if out_of_domain else shape[1], n)
    zi = rng.uniform(lo, hi if out_of_domain else shape[2], n)
    amplitude = rng.normal(0.0, 1.0, n)
    return xi, yi, zi, amplitude


_shapes = st.tuples(st.integers(2, 7), st.integers(2, 7), st.integers(2, 7))
_periodics = st.tuples(st.booleans(), st.booleans(), st.booleans())


class TestScatterProperty:
    @settings(max_examples=40, deadline=None)
    @given(shape=_shapes, periodic=_periodics,
           order=st.sampled_from([1, 2, 3]), n=st.integers(0, 120),
           seed=st.integers(0, 2**31), out_of_domain=st.booleans())
    def test_matches_addat_oracle(self, shape, periodic, order, n, seed,
                                  out_of_domain):
        """Element-wise equality with the oracle within ulp-scale bounds,
        over periodic wraps, clamped boundaries, out-of-domain fallback
        positions and empty batches."""
        rng = np.random.default_rng(seed)
        xi, yi, zi, amplitude = _random_batch(rng, shape, n, out_of_domain)
        expected = oracle_scatter(shape, periodic, xi, yi, zi, order,
                                  amplitude)
        out = np.zeros(shape)
        op = StencilOperator.for_box(shape, periodic, xi, yi, zi, order)
        op.scatter(amplitude, out)
        # ulp-scale bound per node: reassociating a node's sum errs by at
        # most ~K*eps relative to its positive-mass bound (the same sum
        # with |amplitude|), which stays meaningful under cancellation
        bound = oracle_scatter(shape, periodic, xi, yi, zi, order,
                               np.abs(amplitude))
        tol = 64 * np.finfo(float).eps * (bound + bound.max())
        np.testing.assert_array_less(np.abs(out - expected), tol + 1e-300)
        # conservation: the engine deposits exactly the oracle's total mass
        # (each particle's weights sum to 1 along every axis)
        np.testing.assert_allclose(out.sum(), amplitude.sum(), rtol=1e-12,
                                   atol=1e-12 * (np.abs(amplitude).sum() or 1))

    @settings(max_examples=40, deadline=None)
    @given(shape=_shapes, periodic=_periodics,
           order=st.sampled_from([1, 2, 3]), n=st.integers(0, 120),
           seed=st.integers(0, 2**31))
    def test_gather_matches_oracle(self, shape, periodic, order, n, seed):
        rng = np.random.default_rng(seed)
        xi, yi, zi, _ = _random_batch(rng, shape, n)
        field = rng.normal(0.0, 1.0, shape)
        expected = oracle_gather(shape, periodic, field, xi, yi, zi, order)
        got = StencilOperator.for_box(shape, periodic, xi, yi, zi,
                                      order).gather(field)
        bound = oracle_gather(shape, periodic, np.abs(field), xi, yi, zi,
                              order)
        tol = 64 * np.finfo(float).eps * (bound + (bound.max() if n else 0.0))
        np.testing.assert_array_less(np.abs(got - expected), tol + 1e-300)

    @pytest.mark.parametrize("order", [1, 2, 3])
    @pytest.mark.parametrize("periodic", [(True, True, True),
                                          (False, False, False)])
    def test_single_interior_particle_is_exact(self, order, periodic):
        """With one interior particle every node receives exactly one
        contribution, so the summation order is unchanged and the engine
        must equal the oracle bitwise."""
        shape = (8, 8, 8)
        xi = np.array([3.37]); yi = np.array([4.81]); zi = np.array([2.06])
        amplitude = np.array([0.731])
        expected = oracle_scatter(shape, periodic, xi, yi, zi, order,
                                  amplitude)
        out = np.zeros(shape)
        StencilOperator.for_box(shape, periodic, xi, yi, zi,
                                order).scatter(amplitude, out)
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("order", [1, 3])
    def test_periodic_wrap_at_domain_edge(self, order):
        """A particle whose stencil straddles the upper corner wraps."""
        shape = (4, 4, 4)
        xi = np.array([3.75]); yi = np.array([3.75]); zi = np.array([3.75])
        amplitude = np.array([1.0])
        expected = oracle_scatter(shape, (True,) * 3, xi, yi, zi, order,
                                  amplitude)
        out = np.zeros(shape)
        StencilOperator.for_box(shape, (True,) * 3, xi, yi, zi,
                                order).scatter(amplitude, out)
        np.testing.assert_allclose(out, expected, rtol=0, atol=1e-15)
        assert out[0].sum() > 0.0  # weight really crossed the boundary

    def test_clamped_boundary_accumulates_on_edge_plane(self):
        """On an open axis the out-of-range stencil nodes clamp to the
        boundary plane instead of wrapping."""
        shape = (4, 4, 4)
        xi = np.array([0.05]); yi = np.array([2.0]); zi = np.array([2.0])
        amplitude = np.array([1.0])
        periodic = (False, True, True)
        expected = oracle_scatter(shape, periodic, xi, yi, zi, 3, amplitude)
        out = np.zeros(shape)
        StencilOperator.for_box(shape, periodic, xi, yi, zi, 3).scatter(
            amplitude, out)
        np.testing.assert_allclose(out, expected, rtol=0, atol=1e-15)
        assert out[-1].sum() == pytest.approx(0.0, abs=1e-300)

    @pytest.mark.parametrize("periodic", [(True, True, True),
                                          (False, True, False)])
    def test_axis_shorter_than_support_wraps_exactly(self, periodic):
        """Regression: a periodic axis shorter than the stencil support
        must wrap overhanging segments by as many periods as needed —
        the box decomposition emits one segment per period crossed."""
        rng = np.random.default_rng(1)
        shape = (2, 3, 2)
        n = 60
        xi = rng.uniform(-1.2, shape[0] + 1.2, n)
        yi = rng.uniform(-1.2, shape[1] + 1.2, n)
        zi = rng.uniform(-1.2, shape[2] + 1.2, n)
        amplitude = rng.normal(size=n)
        expected = oracle_scatter(shape, periodic, xi, yi, zi, 3, amplitude)
        op = StencilOperator.for_box(shape, periodic, xi, yi, zi, 3)
        assert op.box_dims is not None  # the fast path must handle this
        out = np.zeros(shape)
        op.scatter(amplitude, out)
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)
        field = rng.normal(size=shape)
        np.testing.assert_allclose(
            op.gather(field),
            oracle_gather(shape, periodic, field, xi, yi, zi, 3),
            rtol=1e-12, atol=1e-12)

    def test_empty_batch_is_noop(self):
        out = np.zeros((4, 4, 4))
        op = StencilOperator.for_box((4, 4, 4), (True,) * 3, np.empty(0),
                                     np.empty(0), np.empty(0), 1)
        op.scatter(np.empty(0), out)
        assert not out.any()
        assert op.gather(out).shape == (0,)

    def test_gather_many_shares_one_stencil(self):
        rng = np.random.default_rng(7)
        shape = (6, 6, 6)
        xi, yi, zi, _ = _random_batch(rng, shape, 50)
        fields = [rng.normal(size=shape) for _ in range(6)]
        op = StencilOperator.for_box(shape, (True,) * 3, xi, yi, zi, 3)
        got = op.gather_many(fields)
        assert len(got) == 6
        for field, values in zip(fields, got):
            expected = oracle_gather(shape, (True,) * 3, field, xi, yi, zi, 3)
            np.testing.assert_allclose(values, expected, rtol=1e-13,
                                       atol=1e-13)


class TestFlatIds:
    def test_flat_ids_match_padded_fast_path(self):
        """The reference wrapped-space ids and the padded fast path must
        address the same nodes (checked through a scatter of ones)."""
        rng = np.random.default_rng(11)
        shape = (5, 6, 7)
        for periodic in [(True,) * 3, (False, True, False)]:
            xi, yi, zi, _ = _random_batch(rng, shape, 80)
            bx, _ = shape_factors(xi, 3)
            by, _ = shape_factors(yi, 3)
            bz, _ = shape_factors(zi, 3)
            ids = flat_node_ids(shape, periodic, bx, by, bz, 4)
            ref = np.zeros(shape)
            scatter_flat(ids, np.ones_like(ids, dtype=float), ref)
            out = np.zeros(shape)
            op = StencilOperator.from_bases(shape, periodic, bx, by, bz, 4)
            assert op.box_dims is not None  # fast path engaged
            op.scatter_values(np.ones(op.flat_ids.shape), out)
            np.testing.assert_allclose(out, ref, rtol=0, atol=1e-12)

    def test_out_of_range_bases_fall_back(self):
        op = StencilOperator.from_bases((4, 4, 4), (True,) * 3,
                                        np.array([97]), np.array([0]),
                                        np.array([0]), 2)
        assert op.box_dims is None  # exact wrapped-space fallback
        out = np.zeros((4, 4, 4))
        op.scatter_values(np.ones((1, 8)), out)
        assert out.sum() == pytest.approx(8.0)

    def test_cell_block_ids_layout(self):
        ids = cell_block_ids(np.array([2, 0]), 4)
        assert ids.tolist() == [[8, 9, 10, 11], [0, 1, 2, 3]]


class TestConsumers:
    def test_rhocell_buffer_accumulate_matches_addat(self):
        rng = np.random.default_rng(3)
        n, cells, nodes = 40, 6, 8
        cell_ids = rng.integers(0, cells, n)
        cx = rng.normal(size=(n, nodes))
        cy = rng.normal(size=(n, nodes))
        cz = rng.normal(size=(n, nodes))
        buf = RhocellBuffer(cells, order=1)
        buf.accumulate(cell_ids, cx, cy, cz)
        for got, contrib in ((buf.jx, cx), (buf.jy, cy), (buf.jz, cz)):
            expected = np.zeros((cells, nodes))
            np.add.at(expected, cell_ids, contrib)
            np.testing.assert_allclose(got, expected, rtol=1e-13, atol=1e-13)

    def test_vpu_scatter_add_matches_addat(self):
        vpu = VectorUnit()
        target = np.zeros(16)
        indices = np.array([3, 3, 3, 9, 0])
        values = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        vpu.scatter_add(target, indices, values)
        expected = np.zeros(16)
        np.add.at(expected, indices, values)
        np.testing.assert_allclose(target, expected)

    def test_vpu_scatter_add_broadcasts_scalar(self):
        vpu = VectorUnit()
        target = np.zeros(8)
        vpu.scatter_add(target, np.array([1, 1, 5]), 2.0)
        assert target[1] == pytest.approx(4.0)
        assert target[5] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# kernel-tier parity (repro.backend): every *available* registered tier
# must reproduce the oracle — the fused tier bitwise.  In a no-numba
# environment only the oracle tier is available and these parametrize
# down to it; the CI [jit] leg runs them with the fused tier too.
# ----------------------------------------------------------------------
AVAILABLE_TIERS = kernel_registry.available_tier_names()


class TestKernelTierParity:
    @pytest.mark.parametrize("tier", AVAILABLE_TIERS)
    @settings(max_examples=25, deadline=None)
    @given(shape=_shapes, periodic=_periodics,
           order=st.sampled_from([1, 2, 3]), n=st.integers(0, 90),
           seed=st.integers(0, 2**31), out_of_domain=st.booleans())
    def test_scatter_matches_addat_oracle_on_tier(self, tier, shape, periodic,
                                                  order, n, seed,
                                                  out_of_domain):
        """Every registered tier passes the np.add.at property pin, over
        periodic wraps, clamped boundaries, far out-of-domain fallback
        positions and empty batches."""
        rng = np.random.default_rng(seed)
        xi, yi, zi, amplitude = _random_batch(rng, shape, n, out_of_domain)
        expected = oracle_scatter(shape, periodic, xi, yi, zi, order,
                                  amplitude)
        out = np.zeros(shape)
        with use_backend(BackendConfig(kernel_tier=tier)):
            op = StencilOperator.for_box(shape, periodic, xi, yi, zi, order)
            op.scatter(amplitude, out)
        bound = oracle_scatter(shape, periodic, xi, yi, zi, order,
                               np.abs(amplitude))
        tol = 64 * np.finfo(float).eps * (bound + bound.max())
        np.testing.assert_array_less(np.abs(out - expected), tol + 1e-300)

    @pytest.mark.parametrize("tier", AVAILABLE_TIERS)
    @settings(max_examples=25, deadline=None)
    @given(shape=_shapes, periodic=_periodics,
           order=st.sampled_from([1, 2, 3]), n=st.integers(0, 90),
           seed=st.integers(0, 2**31))
    def test_tier_bitwise_identical_to_oracle_tier(self, tier, shape,
                                                   periodic, order, n, seed):
        """Cross-tier *bitwise* pin: scatter, rho-style amplitude scatter
        and gather on any available tier equal the oracle tier exactly."""
        rng = np.random.default_rng(seed)
        xi, yi, zi, amplitude = _random_batch(rng, shape, n)
        field = rng.normal(0.0, 1.0, shape)
        results = {}
        for name in ("oracle", tier):
            with use_backend(BackendConfig(kernel_tier=name)):
                op = StencilOperator.for_box(shape, periodic, xi, yi, zi,
                                             order)
                out = np.zeros(shape)
                op.scatter(amplitude, out)
                results[name] = (op.flat_ids.copy(), op.weights.copy(),
                                 out, op.gather(field))
        for ref, got in zip(results["oracle"], results[tier]):
            assert np.array_equal(ref, got)


# ----------------------------------------------------------------------
# executor parity through the new path
# ----------------------------------------------------------------------
class TestExecutorBitwiseParity:
    @pytest.mark.parametrize("order", [1, 3])
    def test_backends_bitwise_identical(self, order):
        """serial/threads/process backends produce bitwise-identical
        currents and charge through the flat-index scatter, including on
        a clamped (non-periodic) domain."""
        config = GridConfig(
            n_cell=(8, 8, 8), hi=(8.0e-6,) * 3, tile_size=(4, 4, 4),
            field_boundary=("pec", "periodic", "periodic"),
            particle_boundary=("absorbing", "periodic", "periodic"),
        )
        results = {}
        for name, executor in (("serial", SerialExecutor(3)),
                               ("threads", ThreadTileExecutor(3)),
                               ("processes", ProcessShardExecutor(3))):
            grid, container = make_plasma(config, ppc=(2, 2, 2), seed=5)
            with executor:
                deposit_reference(grid, container, order, executor=executor)
                deposit_rho_reference(grid, container, order,
                                      executor=executor)
            results[name] = (grid.jx.copy(), grid.jy.copy(), grid.jz.copy(),
                             grid.rho.copy())
        for name in ("threads", "processes"):
            for ref, got in zip(results["serial"], results[name]):
                assert np.array_equal(ref, got), name

    def test_sharded_matches_inline_through_stencil(self):
        grid_inline, container = make_plasma(
            GridConfig(n_cell=(8, 8, 8), hi=(8.0e-6,) * 3,
                       tile_size=(4, 4, 4)), ppc=(2, 2, 2), seed=9)
        deposit_reference(grid_inline, container, 3)

        grid_sharded, container = make_plasma(
            GridConfig(n_cell=(8, 8, 8), hi=(8.0e-6,) * 3,
                       tile_size=(4, 4, 4)), ppc=(2, 2, 2), seed=9)
        with SerialExecutor(1) as executor:
            deposit_reference(grid_sharded, container, 3, executor=executor)
        assert np.array_equal(grid_inline.jx, grid_sharded.jx)


# ----------------------------------------------------------------------
# scratch grid pool
# ----------------------------------------------------------------------
class TestScratchGridPool:
    def test_acquire_release_reuses_instance(self):
        pool = ScratchGridPool()
        config = GridConfig(n_cell=(4, 4, 4))
        grid = pool.acquire(config)
        grid.jx[...] = 7.0
        grid.rho[...] = 3.0
        pool.release(grid)
        again = pool.acquire(config)
        assert again is grid
        # re-leased grids are indistinguishable from a fresh Grid for
        # deposition purposes: zeroed current and charge accumulators
        assert not again.jx.any() and not again.rho.any()

    def test_distinct_geometries_do_not_mix(self):
        pool = ScratchGridPool()
        a = pool.acquire(GridConfig(n_cell=(4, 4, 4)))
        pool.release(a)
        b = pool.acquire(GridConfig(n_cell=(8, 4, 4)))
        assert b is not a
        assert b.shape == (8, 4, 4)

    def test_sharded_deposit_returns_grids_to_global_pool(self):
        scratch_grids.clear()
        config = GridConfig(n_cell=(8, 8, 8), hi=(8.0e-6,) * 3,
                            tile_size=(4, 4, 4))
        grid, container = make_plasma(config, ppc=(1, 1, 1), seed=2)
        with SerialExecutor(3) as executor:
            deposit_reference(grid, container, 1, executor=executor)
        leased = scratch_grids.acquire(config)
        try:
            # the shard scratch grids were recycled, not leaked: the pool
            # serves one of them back instead of allocating from scratch
            assert leased.shape == grid.shape
            assert not leased.jx.any()
        finally:
            scratch_grids.release(leased)

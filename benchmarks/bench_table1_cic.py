"""Table 1 — performance breakdown of the first-order (CIC) kernel.

The comparative study at PPC = 128 measures the complete deposition kernel
(preprocessing, compute, sorting) for six configurations of increasing
sophistication.  Expected shape (paper values in seconds:
74.13 / 45.64 / 54.89 / 44.81 / 34.13 / 24.90):

* the incremental sorter alone speeds the baseline up by ~1.6x,
* the auto-vectorised rhocell kernel beats the baseline but not the sorted
  baseline,
* the hand-tuned VPU kernel is the strongest non-MPU configuration,
* MatrixPIC beats everything, including the hand-tuned VPU kernel
  (paper: 1.37x), for an overall ~3x gain over the baseline.
"""

from __future__ import annotations

from repro.analysis.tables import format_kernel_table
from repro.baselines.configs import CIC_COMPARISON_CONFIGS

from .conftest import BENCH_STEPS, campaign_sweep, uniform_workload


def run_table1():
    workload = uniform_workload(ppc=128, shape_order=1)
    return campaign_sweep(workload, CIC_COMPARISON_CONFIGS,
                          steps=BENCH_STEPS)


def test_table1_cic_kernel_breakdown(benchmark, print_header):
    results = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    print_header("Table 1: first-order (CIC) deposition kernel breakdown, PPC=128")
    print(format_kernel_table(results))

    total = {name: r.timing.total for name, r in results.items()}
    baseline = total["Baseline"]
    for name, seconds in total.items():
        benchmark.extra_info[f"speedup::{name}"] = baseline / seconds

    # orderings of Table 1
    assert total["Baseline+IncrSort"] < total["Baseline"]
    assert total["Rhocell"] < total["Baseline"]
    assert total["Rhocell+IncrSort"] < total["Rhocell"]
    assert total["Rhocell+IncrSort (VPU)"] < total["Rhocell+IncrSort"]
    assert total["MatrixPIC (FullOpt)"] < total["Rhocell+IncrSort (VPU)"]
    # headline magnitudes: ~1.6x from sorting alone, >=2.5x end to end,
    # and a clear margin over the strongest VPU competitor
    assert baseline / total["Baseline+IncrSort"] > 1.3
    assert baseline / total["MatrixPIC (FullOpt)"] > 2.5
    assert (total["Rhocell+IncrSort (VPU)"]
            / total["MatrixPIC (FullOpt)"]) > 1.2

    # the sorted configurations spend only a small share of the kernel in
    # sorting (paper: ~11 % for CIC)
    matrix = results["MatrixPIC (FullOpt)"].timing
    assert matrix.sort / matrix.total < 0.3

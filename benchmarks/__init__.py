"""Benchmark harnesses reproducing the paper's tables and figures."""

"""Table 2 — performance breakdown of the third-order (QSP) kernel.

The higher arithmetic intensity of the third-order scheme raises the MPU
tile utilisation from 25 % to 50 %, so the MatrixPIC advantage grows:
the paper reports an 8.7x speedup over the baseline and 2.0x over the best
hand-tuned VPU kernel, with sorting shrinking to ~2 % of the kernel time.
"""

from __future__ import annotations

from repro.analysis.tables import format_kernel_table
from repro.baselines.configs import QSP_COMPARISON_CONFIGS

from .conftest import BENCH_STEPS, campaign_sweep, uniform_workload


def run_table2():
    workload = uniform_workload(ppc=128, shape_order=3)
    return campaign_sweep(workload, QSP_COMPARISON_CONFIGS,
                          steps=BENCH_STEPS)


def test_table2_qsp_kernel_breakdown(benchmark, print_header):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    print_header("Table 2: third-order (QSP) deposition kernel breakdown, PPC=128")
    print(format_kernel_table(results))

    total = {name: r.timing.total for name, r in results.items()}
    baseline = total["Baseline"]
    for name, seconds in total.items():
        benchmark.extra_info[f"speedup::{name}"] = baseline / seconds

    matrix = total["MatrixPIC (FullOpt)"]
    vpu = total["Rhocell+IncrSort (VPU)"]

    # orderings and headline magnitudes of Table 2
    assert total["Baseline+IncrSort"] < baseline
    assert vpu < total["Baseline+IncrSort"]
    assert matrix < vpu
    assert baseline / matrix > 5.0          # paper: 8.7x
    assert vpu / matrix > 1.5               # paper: 2.0x

    # the QSP advantage exceeds the CIC advantage (paper's central claim C4)
    # and sorting becomes a negligible share of the kernel
    matrix_timing = results["MatrixPIC (FullOpt)"].timing
    assert matrix_timing.sort / matrix_timing.total < 0.1

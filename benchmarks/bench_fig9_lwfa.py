"""Figure 9 — total wall time of the Laser-Wakefield Acceleration workload.

The paper reports up to a 2.63x total-simulation speedup of MatrixPIC over
the WarpX baseline on the LWFA scenario, with the advantage appearing above
roughly 8 particles per cell and growing with density (the wake compresses
particles into high-density regions that suit the MPU kernel, while the
incremental sorter absorbs the heavy particle migration).

This harness runs the down-scaled LWFA workload — Gaussian laser, moving
window, background plasma with an up-ramp — for both configurations and
compares the modelled deposition time plus the (identical for both) rest of
the loop.
"""

from __future__ import annotations

from repro.analysis.tables import format_series_table, speedup_series

from .conftest import BENCH_STEPS, campaign_sweep, lwfa_workload

CONFIGS = ("Baseline", "MatrixPIC (FullOpt)")
LWFA_PPC = (1, 8, 64)


def run_lwfa_sweep():
    kernel_time = {}
    moved_fraction = {}
    for ppc in LWFA_PPC:
        workload = lwfa_workload(ppc=ppc)
        results = campaign_sweep(workload, CONFIGS, steps=BENCH_STEPS,
                                 scramble=False)
        kernel_time[ppc] = {name: r.timing.total for name, r in results.items()}
        matrix = results["MatrixPIC (FullOpt)"]
        moved_fraction[ppc] = {
            "global_sorts": matrix.extra.get("global_sorts", 0.0),
        }
    return kernel_time, moved_fraction


def test_fig9_lwfa_sweep(benchmark, print_header):
    kernel_time, stats = benchmark.pedantic(run_lwfa_sweep, rounds=1,
                                            iterations=1)

    print_header("Figure 9: LWFA deposition kernel time vs PPC")
    print(format_series_table(kernel_time, "modelled kernel seconds"))
    speedups = speedup_series(kernel_time, "Baseline", "MatrixPIC (FullOpt)")
    print()
    print("MatrixPIC speedup over Baseline per PPC:",
          {ppc: round(s, 2) for ppc, s in speedups.items()})
    for ppc, value in speedups.items():
        benchmark.extra_info[f"speedup_ppc{ppc}"] = value

    # shape checks: low density is unfavourable (paper: below ~8 PPC the
    # baseline wins), the dense regime favours MatrixPIC and the advantage
    # grows with density
    assert speedups[1] < speedups[64]
    assert speedups[64] > 1.0

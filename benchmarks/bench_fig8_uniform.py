"""Figure 8 — overall performance on the uniform-plasma workload.

Panel (a) of Figure 8 compares total wall time, deposition-kernel time and
particle throughput of MatrixPIC against the WarpX baseline across the PPC
density scan; panel (b) shows the normalised kernel-time breakdown.  This
harness regenerates both series from the modelled kernel timings.

Expected shape (paper §6.1): MatrixPIC loses to the baseline at PPC = 1
(framework overheads are not amortised), wins from roughly 8 particles per
cell upward, and the advantage grows with density.
"""

from __future__ import annotations

from repro.analysis.tables import format_series_table, speedup_series

from .conftest import BENCH_STEPS, PPC_SWEEP, campaign_sweep, uniform_workload

CONFIGS = ("Baseline", "MatrixPIC (FullOpt)")


def run_ppc_sweep():
    kernel_time = {}
    throughput = {}
    breakdown = {}
    for ppc in PPC_SWEEP:
        workload = uniform_workload(ppc=ppc)
        results = campaign_sweep(workload, CONFIGS, steps=BENCH_STEPS)
        kernel_time[ppc] = {name: r.timing.total for name, r in results.items()}
        throughput[ppc] = {name: r.throughput for name, r in results.items()}
        matrix = results["MatrixPIC (FullOpt)"].timing
        total = matrix.total or 1.0
        breakdown[ppc] = {
            "compute": matrix.compute / total,
            "preprocess": matrix.preprocess / total,
            "sort": matrix.sort / total,
        }
    return kernel_time, throughput, breakdown


def test_fig8_uniform_plasma_sweep(benchmark, print_header):
    kernel_time, throughput, breakdown = benchmark.pedantic(
        run_ppc_sweep, rounds=1, iterations=1)

    print_header("Figure 8(a): deposition kernel time and throughput vs PPC")
    print(format_series_table(kernel_time, "modelled kernel seconds"))
    print()
    print(format_series_table(throughput, "particles per modelled second"))
    print()
    print_header("Figure 8(b): normalised MatrixPIC kernel-time breakdown")
    print(format_series_table(breakdown, "fraction of kernel time"))

    speedups = speedup_series(kernel_time, "Baseline", "MatrixPIC (FullOpt)")
    print()
    print("MatrixPIC speedup over Baseline per PPC:",
          {ppc: round(s, 2) for ppc, s in speedups.items()})
    for ppc, value in speedups.items():
        benchmark.extra_info[f"speedup_ppc{ppc}"] = value

    # shape checks from the paper: overheads dominate at PPC=1, the
    # high-density regime favours MatrixPIC, and the advantage grows with PPC
    assert speedups[1] < 1.3
    assert speedups[64] > 1.0
    assert speedups[128] > 1.0
    assert speedups[128] > speedups[1]

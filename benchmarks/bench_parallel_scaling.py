"""Parallel tile-sharded execution: step-loop scaling vs. shard count.

Runs the same multi-tile uniform-plasma workload through every execution
backend of :mod:`repro.exec` (serial reference, thread pool, chunked
process shards) at increasing shard counts, and reports wall seconds per
step and speedup over the serial loop.  A parity column confirms the
determinism contract: at a fixed shard count every backend deposits a
bitwise-identical current.

Speedup is hardware-bound: on an N-core machine the ideal curve saturates
at N, and on a single-core machine (CI sandboxes) every backend collapses
to ~1x — the harness prints the visible core count and only asserts the
>=1.5x target at 4 shards when at least 4 cores are available.

The measured rows are written to ``BENCH_parallel_scaling.json`` (repo
root, override with ``$REPRO_BENCH_OUTPUT``) as a perf-trajectory
datapoint; the committed baseline was re-measured after the PR-3
flat-index stencil rewrite, whose single-pass ``np.bincount`` scatter
shrinks the per-shard work the executor amortises.

Run standalone:  PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
Or via pytest:   python -m pytest benchmarks/bench_parallel_scaling.py -s
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.config import ExecutionConfig
from repro.pic.simulation import Simulation
from repro.workloads.uniform import UniformPlasmaWorkload

#: (backend, shard count) grid of the scaling study; serial/1 is the baseline
SCALING_POINTS: Tuple[Tuple[str, int], ...] = (
    ("serial", 1),
    ("threads", 2),
    ("threads", 4),
    ("processes", 2),
    ("processes", 4),
)
#: 16^3 cells in 4^3 tiles -> 64 tiles, PPC 8 -> 32768 particles
BENCH_N_CELL = (16, 16, 16)
BENCH_TILE = (4, 4, 4)
BENCH_PPC = 8
#: measured steps (after a one-step warm-up that spins up worker pools)
BENCH_STEPS = 3
#: timing repetitions per point; the best (minimum) is reported, which
#: rejects transient load from other processes on shared machines
BENCH_REPS = 3


def available_cores() -> int:
    """Cores this process may run on (affinity-aware, falls back to count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _run_point(backend: str, num_shards: int,
               steps: int = BENCH_STEPS) -> Tuple[float, np.ndarray]:
    """Seconds per step and final jx for one (backend, shards) point."""
    workload = UniformPlasmaWorkload(
        n_cell=BENCH_N_CELL, tile_size=BENCH_TILE, ppc=BENCH_PPC,
        max_steps=steps,
        execution=ExecutionConfig(backend=backend, num_shards=num_shards),
    )
    simulation = workload.build_simulation()
    try:
        simulation.run(steps=1)  # warm-up: lazily creates the worker pool
        best = float("inf")
        for _ in range(BENCH_REPS):
            start = time.perf_counter()
            simulation.run(steps=steps)
            best = min(best, time.perf_counter() - start)
        return best / steps, simulation.grid.jx.copy()
    finally:
        simulation.shutdown()


def run_scaling() -> List[Dict[str, object]]:
    """Run the scaling grid; returns one row per (backend, shards) point.

    Parity is checked against a serial run at the same shard count, which
    is the determinism contract's guarantee (different shard counts have
    different reduction trees and may differ in the last ulp).
    """
    rows: List[Dict[str, object]] = []
    serial_seconds, serial_jx1 = _run_point("serial", 1)
    serial_at_shards: Dict[int, np.ndarray] = {1: serial_jx1}
    measured: Dict[Tuple[str, int], Tuple[float, np.ndarray]] = {
        ("serial", 1): (serial_seconds, serial_jx1),
    }
    for backend, shards in SCALING_POINTS:
        if (backend, shards) not in measured:
            measured[(backend, shards)] = _run_point(backend, shards)
        seconds, jx = measured[(backend, shards)]
        if shards not in serial_at_shards:
            if backend == "serial":
                serial_at_shards[shards] = jx
            else:
                _, serial_jx = _run_point("serial", shards)
                serial_at_shards[shards] = serial_jx
        rows.append({
            "backend": backend,
            "shards": shards,
            "seconds_per_step": seconds,
            "speedup": serial_seconds / seconds if seconds > 0 else float("inf"),
            "bitwise_parity": bool(
                np.array_equal(jx, serial_at_shards[shards])
            ),
        })
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    lines = [f"{'backend':>10s} {'shards':>6s} {'s/step':>10s} "
             f"{'speedup':>8s} {'parity':>7s}"]
    for row in rows:
        lines.append(
            f"{row['backend']:>10s} {row['shards']:>6d} "
            f"{row['seconds_per_step']:>10.4f} {row['speedup']:>7.2f}x "
            f"{'ok' if row['bitwise_parity'] else 'FAIL':>7s}"
        )
    return "\n".join(lines)


def best_speedup_at(rows: List[Dict[str, object]], shards: int) -> float:
    candidates = [float(r["speedup"]) for r in rows if r["shards"] == shards]
    return max(candidates, default=0.0)


def output_path() -> str:
    """Trajectory JSON location (repo root by default).

    The override variable is benchmark-specific so a suite-wide run with
    one override cannot make the trajectory writers clobber each other.
    """
    default = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_parallel_scaling.json")
    return os.environ.get("REPRO_BENCH_SCALING_OUTPUT", default)


def write_report(rows: List[Dict[str, object]], cores: int) -> str:
    """Write the scaling rows as a perf-trajectory JSON record."""
    report = {
        "benchmark": "parallel_scaling",
        "engine": "flat-index stencil (post-PR3) + tile-shard executor",
        "n_cell": list(BENCH_N_CELL),
        "tile_size": list(BENCH_TILE),
        "ppc": BENCH_PPC,
        "steps": BENCH_STEPS,
        "reps": BENCH_REPS,
        "cores_visible": cores,
        "rows": rows,
    }
    path = output_path()
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return path


def main() -> None:
    cores = available_cores()
    print(f"tile-sharded step loop, uniform plasma "
          f"{BENCH_N_CELL[0]}^3 cells / {BENCH_TILE[0]}^3 tiles, "
          f"PPC={BENCH_PPC}, {cores} core(s) visible")
    rows = run_scaling()
    print(format_rows(rows))
    path = write_report(rows, cores)
    print(f"timings written to {path}")

    assert all(row["bitwise_parity"] for row in rows), \
        "a backend broke the fixed-reduction-order determinism contract"
    speedup4 = best_speedup_at(rows, 4)
    if cores >= 4:
        assert speedup4 >= 1.5, (
            f"expected >=1.5x speedup at 4 shards on {cores} cores, "
            f"got {speedup4:.2f}x"
        )
        print(f"\nspeedup at 4 shards: {speedup4:.2f}x (target >=1.5x: met)")
    else:
        print(f"\nspeedup at 4 shards: {speedup4:.2f}x — {cores} core(s) "
              "visible, so the >=1.5x target cannot be exercised here; "
              "parity checks still hold")


def test_parallel_scaling(print_header):
    """Pytest entry point: scaling table plus the determinism assertions."""
    print_header("Parallel scaling: tile-sharded execution of the step loop")
    main()


if __name__ == "__main__":
    main()

"""Domain-decomposed stepping: overhead/scaling vs the single-domain loop.

Runs the same uniform-plasma workload as a single domain and as
``(px, py, pz)`` decompositions (``repro.domain``), measuring wall
seconds per step, and asserts the subsystem's bitwise contract on every
point: at a fixed executor shard count, a decomposed run reproduces the
single-domain fields, currents and energy history bit for bit.

On a single-core machine (CI sandboxes) the decomposition cannot win —
halo exchange and seam reduction are pure overhead there — so the
benchmark gates on a *bounded overhead ratio* rather than a speedup, and
records the measured ratios in ``BENCH_domain_scaling.json`` (repo root,
override with ``$REPRO_BENCH_OUTPUT``) as the perf-trajectory datapoint
future multi-core runs are compared against.

Run standalone:  PYTHONPATH=src python benchmarks/bench_domain_scaling.py
Or via pytest:   python -m pytest benchmarks/bench_domain_scaling.py -s
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.config import ExecutionConfig
from repro.workloads.uniform import UniformPlasmaWorkload

#: (domains, backend, shards) grid; (1,1,1)/serial/1 is the baseline
SCALING_POINTS: Tuple[Tuple[Tuple[int, int, int], str, int], ...] = (
    ((1, 1, 2), "serial", 1),
    ((2, 1, 2), "serial", 1),
    ((2, 2, 2), "serial", 1),
    ((2, 1, 2), "threads", 4),
)
BENCH_N_CELL = (16, 16, 16)
BENCH_TILE = (4, 4, 4)
BENCH_PPC = 8
BENCH_STEPS = 3
BENCH_REPS = 3
#: worst acceptable slowdown of the decomposed serial step vs the plain
#: loop on a single core (halo copies + per-window seam reduction)
MAX_OVERHEAD_RATIO = 3.0


def available_cores() -> int:
    """Cores this process may run on (affinity-aware, falls back to count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _run_point(domains: Tuple[int, int, int], backend: str, shards: int,
               steps: int = BENCH_STEPS):
    """Seconds per step plus the final (jx, energy history) fingerprint."""
    workload = UniformPlasmaWorkload(
        n_cell=BENCH_N_CELL, tile_size=BENCH_TILE, ppc=BENCH_PPC,
        max_steps=steps, domains=domains,
        execution=ExecutionConfig(backend=backend, num_shards=shards),
    )
    simulation = workload.build_simulation()
    try:
        simulation.run(steps=1)  # warm-up: pools, halo plans, solver scratch
        best = float("inf")
        for _ in range(BENCH_REPS):
            start = time.perf_counter()
            simulation.run(steps=steps)
            best = min(best, time.perf_counter() - start)
        simulation.run(steps=0, record_energy=True)
        if simulation.domain is not None:
            simulation.domain.assemble(simulation.grid)
        energy = simulation.energy.history[-1]
        return (best / steps, simulation.grid.jx.copy(),
                (energy.field_energy, energy.kinetic_energy))
    finally:
        simulation.shutdown()


def run_scaling() -> List[Dict[str, object]]:
    """One row per decomposition point, parity-checked against baselines.

    Parity is asserted against a single-domain run at the *same* backend
    and shard count — the determinism contract's exact scope.
    """
    rows: List[Dict[str, object]] = []
    baselines: Dict[Tuple[str, int], Tuple] = {}
    serial_seconds, jx0, energy0 = _run_point((1, 1, 1), "serial", 1)
    baselines[("serial", 1)] = (serial_seconds, jx0, energy0)
    rows.append({
        "domains": [1, 1, 1], "backend": "serial", "shards": 1,
        "seconds_per_step": serial_seconds, "overhead_ratio": 1.0,
        "bitwise_parity": True,
    })
    for domains, backend, shards in SCALING_POINTS:
        if (backend, shards) not in baselines:
            baselines[(backend, shards)] = _run_point((1, 1, 1), backend,
                                                      shards)
        base_seconds, base_jx, base_energy = baselines[(backend, shards)]
        seconds, jx, energy = _run_point(domains, backend, shards)
        rows.append({
            "domains": list(domains),
            "backend": backend,
            "shards": shards,
            "seconds_per_step": seconds,
            "overhead_ratio": seconds / base_seconds if base_seconds > 0
            else float("inf"),
            "bitwise_parity": bool(
                np.array_equal(jx, base_jx) and energy == base_energy
            ),
        })
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    lines = [f"{'domains':>10s} {'backend':>9s} {'shards':>6s} "
             f"{'s/step':>9s} {'overhead':>9s} {'parity':>7s}"]
    for row in rows:
        domains = "x".join(str(d) for d in row["domains"])
        lines.append(
            f"{domains:>10s} {row['backend']:>9s} {row['shards']:>6d} "
            f"{row['seconds_per_step']:>9.4f} {row['overhead_ratio']:>8.2f}x "
            f"{'ok' if row['bitwise_parity'] else 'FAIL':>7s}"
        )
    return "\n".join(lines)


def output_path() -> str:
    """Trajectory JSON location (repo root by default).

    The override variable is benchmark-specific so a suite-wide run with
    one override cannot make the trajectory writers clobber each other.
    """
    default = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_domain_scaling.json")
    return os.environ.get("REPRO_BENCH_DOMAIN_OUTPUT", default)


def main() -> None:
    cores = available_cores()
    print(f"domain-decomposed step loop, uniform plasma "
          f"{BENCH_N_CELL[0]}^3 cells / {BENCH_TILE[0]}^3 tiles, "
          f"PPC={BENCH_PPC}, {cores} core(s) visible")
    rows = run_scaling()
    print(format_rows(rows))

    report = {
        "benchmark": "domain_scaling",
        "n_cell": list(BENCH_N_CELL),
        "tile_size": list(BENCH_TILE),
        "ppc": BENCH_PPC,
        "steps": BENCH_STEPS,
        "reps": BENCH_REPS,
        "cores_visible": cores,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "rows": rows,
    }
    path = output_path()
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"timings written to {path}")

    assert all(row["bitwise_parity"] for row in rows), \
        "a decomposed run broke the bitwise parity contract"
    serial_rows = [row for row in rows
                   if row["backend"] == "serial" and row["domains"] != [1, 1, 1]]
    worst = max(row["overhead_ratio"] for row in serial_rows)
    assert worst <= MAX_OVERHEAD_RATIO, (
        f"decomposed serial stepping is {worst:.2f}x the single-domain "
        f"loop (budget <={MAX_OVERHEAD_RATIO}x)"
    )
    print(f"\nworst serial decomposition overhead: {worst:.2f}x "
          f"(budget <={MAX_OVERHEAD_RATIO}x: met); parity ok on "
          f"{len(rows)} point(s)")


def test_domain_scaling(print_header):
    """Pytest entry point: scaling table plus the parity assertions."""
    print_header("Domain-decomposed stepping: overhead, scaling and parity")
    main()


if __name__ == "__main__":
    main()

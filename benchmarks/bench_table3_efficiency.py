"""Table 3 — cross-platform kernel efficiency (% of theoretical FP64 peak).

The paper's cross-platform study runs the QSP kernel at PPC = 512 and
credits every implementation only with the canonical 419 FLOPs per particle
while charging it for its full kernel time.  Expected shape:

* the direct CPU baseline reaches only ~10 % of peak,
* the hand-tuned VPU kernel with incremental sorting reaches ~55 %,
* MatrixPIC reaches ~83 %, roughly 2.8x the efficiency of the WarpX CUDA
  kernel on an A800 (~30 %).

The harness uses a PPC of 64 (the Python substrate cannot hold 512
particles per cell in reasonable time); efficiency is a per-particle ratio,
so the regime is representative — EXPERIMENTS.md records the deviation.
"""

from __future__ import annotations

from repro.analysis.metrics import peak_efficiency_percent
from repro.analysis.tables import format_efficiency_table
from repro.baselines.gpu_model import GPUDepositionModel
from repro.hardware.cost_model import CostModel

from .conftest import BENCH_STEPS, campaign_sweep, uniform_workload

LX2_CONFIGS = ("Baseline", "Rhocell+IncrSort (VPU)", "MatrixPIC (FullOpt)")
EFFICIENCY_PPC = 64


def run_table3():
    cost_model = CostModel()
    workload = uniform_workload(ppc=EFFICIENCY_PPC, shape_order=3)
    results = campaign_sweep(workload, LX2_CONFIGS, steps=BENCH_STEPS,
                             cost_model=cost_model)
    efficiencies = {
        f"LX2 CPU / {name}": peak_efficiency_percent(cost_model, r.timing)
        for name, r in results.items()
    }
    gpu = GPUDepositionModel()
    efficiencies["NVIDIA A800 / Baseline (CUDA)"] = 100.0 * gpu.peak_efficiency(
        num_particles=10_000_000, order=3, particles_per_cell=512)
    return efficiencies


def test_table3_cross_platform_efficiency(benchmark, print_header):
    efficiencies = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    print_header("Table 3: cross-platform kernel efficiency (% of FP64 peak), QSP")
    print(format_efficiency_table(efficiencies))
    for name, value in efficiencies.items():
        benchmark.extra_info[name] = value

    lx2_matrix = efficiencies["LX2 CPU / MatrixPIC (FullOpt)"]
    lx2_vpu = efficiencies["LX2 CPU / Rhocell+IncrSort (VPU)"]
    lx2_base = efficiencies["LX2 CPU / Baseline"]
    a800 = efficiencies["NVIDIA A800 / Baseline (CUDA)"]

    # Table 3 orderings: MatrixPIC > hand-tuned VPU > A800 CUDA > LX2 baseline
    assert lx2_matrix > lx2_vpu > lx2_base
    assert lx2_vpu > a800 * 0.9
    assert lx2_base < a800
    # headline claim C5: MatrixPIC is a multiple of the CUDA kernel's
    # efficiency (paper: 2.8x) and far above the CPU baseline
    assert lx2_matrix > 1.5 * a800
    assert lx2_matrix > 5.0 * lx2_base

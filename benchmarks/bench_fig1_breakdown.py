"""Figure 1 — runtime breakdown of a uniform-plasma PIC run.

The paper's Figure 1 shows that on a many-core CPU the deposition step
alone accounts for more than 40 % of the total runtime of a WarpX uniform
plasma simulation (particle gather + deposition together exceed 80 %).
This harness runs the plain reference simulation loop and prints the same
stage breakdown from wall-clock timers.
"""

from __future__ import annotations

from repro.analysis.runner import run_simulation_experiment
from repro.analysis.tables import format_breakdown_table

from .conftest import uniform_workload


def run_breakdown(ppc: int = 64, steps: int = 3):
    workload = uniform_workload(ppc=ppc, max_steps=steps)
    simulation = run_simulation_experiment(workload, steps=steps)
    return simulation.breakdown


def test_fig1_runtime_breakdown(benchmark, print_header):
    breakdown = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    fractions = breakdown.fractions()

    print_header("Figure 1: runtime breakdown, uniform plasma (PPC=64)")
    print(format_breakdown_table(dict(breakdown.seconds)))
    deposition_fraction = fractions.get("current_deposition", 0.0)
    particle_fraction = deposition_fraction + fractions.get("field_gather_push", 0.0)
    print(f"deposition fraction of total: {100 * deposition_fraction:.1f}% "
          "(paper: >40%)")
    print(f"gather+push+deposition fraction: {100 * particle_fraction:.1f}% "
          "(paper: >80%)")

    benchmark.extra_info["deposition_fraction"] = deposition_fraction
    benchmark.extra_info["particle_fraction"] = particle_fraction

    # the qualitative claim of Figure 1: particle-grid work dominates the loop
    assert deposition_fraction > 0.25
    assert particle_fraction > 0.5

"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper's evaluation
section at a reduced problem size (the pure-Python substrate cannot run the
paper's 30-million-cell domains).  The numbers printed by each harness are
*modelled* LX2 kernel seconds from the cost model — the quantity the
EXPERIMENTS.md comparison uses — while pytest-benchmark records the Python
wall-clock of the harness itself as a regression guard.
"""

from __future__ import annotations

import pytest

from repro.workloads.lwfa import LWFAWorkload
from repro.workloads.uniform import UniformPlasmaWorkload

#: grid used by the kernel-study benchmarks (one 8x8x8 tile, as in Table 4)
BENCH_N_CELL = (8, 8, 8)
BENCH_TILE = (8, 8, 8)
#: measured steps per configuration (after one warm-up step)
BENCH_STEPS = 2
#: PPC sweep of Figures 8-10 (the paper's scan, Appendix A)
PPC_SWEEP = (1, 8, 64, 128)


def uniform_workload(ppc: int, shape_order: int = 1,
                     max_steps: int = BENCH_STEPS) -> UniformPlasmaWorkload:
    """The uniform-plasma workload at benchmark scale."""
    return UniformPlasmaWorkload(n_cell=BENCH_N_CELL, tile_size=BENCH_TILE,
                                 ppc=ppc, shape_order=shape_order,
                                 max_steps=max_steps)


def lwfa_workload(ppc: int, max_steps: int = BENCH_STEPS) -> LWFAWorkload:
    """The LWFA workload at benchmark scale."""
    return LWFAWorkload(n_cell=(8, 8, 32), tile_size=(8, 8, 16), ppc=ppc,
                        max_steps=max_steps)


@pytest.fixture
def print_header(request):
    """Print a banner naming the artifact a benchmark reproduces."""

    def _print(title: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)

    return _print

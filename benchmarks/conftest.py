"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper's evaluation
section at a reduced problem size (the pure-Python substrate cannot run the
paper's 30-million-cell domains).  The numbers printed by each harness are
*modelled* LX2 kernel seconds from the cost model — the quantity the
EXPERIMENTS.md comparison uses — while pytest-benchmark records the Python
wall-clock of the harness itself.

The harnesses route through the campaign result cache, so on repeat runs
the recorded wall-clock measures cache replay, not simulation: to use it
as an interpreter-performance regression guard, run with
``REPRO_BENCH_NO_CACHE=1`` (the modelled kernel seconds are unaffected
either way).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.cache import ResultCache, default_cache_dir
from repro.analysis.runner import sweep_configurations
from repro.workloads.lwfa import LWFAWorkload
from repro.workloads.uniform import UniformPlasmaWorkload

#: grid used by the kernel-study benchmarks (one 8x8x8 tile, as in Table 4)
BENCH_N_CELL = (8, 8, 8)
BENCH_TILE = (8, 8, 8)
#: measured steps per configuration (after one warm-up step)
BENCH_STEPS = 2
#: PPC sweep of Figures 8-10 (the paper's scan, Appendix A)
PPC_SWEEP = (1, 8, 64, 128)

def _jobs_from_env() -> int:
    """Worker count from $REPRO_BENCH_JOBS; malformed values fall back to
    serial instead of crashing benchmark collection."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


#: worker processes used for cache misses (overridable for CI scaling runs)
BENCH_JOBS = _jobs_from_env()


def bench_cache() -> ResultCache | None:
    """The shared on-disk result cache of the benchmark harnesses.

    Defaults to ``.repro-cache`` in the working directory (override with
    ``$REPRO_CACHE_DIR``); a second run of any table/figure benchmark
    replays every cell from here instead of recomputing it.

    The cache key covers the experiment spec, the library version and a
    digest of the ``repro`` package sources, so editing kernel or
    cost-model code invalidates stale entries automatically; set
    ``REPRO_BENCH_NO_CACHE=1`` to bypass the cache entirely.
    """
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        return None
    return ResultCache(default_cache_dir())


def campaign_sweep(workload, configurations, **kwargs):
    """``sweep_configurations`` wired to the shared benchmark cache."""
    return sweep_configurations(workload, configurations,
                                cache=bench_cache(), jobs=BENCH_JOBS,
                                **kwargs)


def uniform_workload(ppc: int, shape_order: int = 1,
                     max_steps: int = BENCH_STEPS) -> UniformPlasmaWorkload:
    """The uniform-plasma workload at benchmark scale."""
    return UniformPlasmaWorkload(n_cell=BENCH_N_CELL, tile_size=BENCH_TILE,
                                 ppc=ppc, shape_order=shape_order,
                                 max_steps=max_steps)


def lwfa_workload(ppc: int, max_steps: int = BENCH_STEPS) -> LWFAWorkload:
    """The LWFA workload at benchmark scale."""
    return LWFAWorkload(n_cell=(8, 8, 32), tile_size=(8, 8, 16), ppc=ppc,
                        max_steps=max_steps)


@pytest.fixture
def print_header(request):
    """Print a banner naming the artifact a benchmark reproduces."""

    def _print(title: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)

    return _print

"""Appendix B — the isomorphic PM and PME deposition workloads.

Appendix B of the paper argues that the Matrix-PIC optimisations transfer
unchanged to the mass-deposition step of particle-mesh N-body codes and the
charge-assignment step of particle-mesh-Ewald molecular dynamics, because
all three share the same scatter-add pattern.  This harness measures the
two isomorphic deposition steps of the workload implementations and checks
their conservation properties.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.nbody_pm import ParticleMeshGravity
from repro.workloads.pme import PMEChargeAssignment


def run_pm_deposition(n_particles: int = 20_000):
    pm = ParticleMeshGravity(n_cell=(32, 32, 32), box_size=1.0, shape_order=1)
    positions, _, masses = pm.random_particles(n_particles, seed=1)
    rho = pm.deposit_mass(positions, masses)
    return pm, rho, masses


def run_pme_assignment(n_atoms: int = 20_000):
    pme = PMEChargeAssignment(n_cell=(32, 32, 32), shape_order=3)
    positions, charges = pme.random_molecule(n_atoms, seed=2)
    rho = pme.assign_charges(positions, charges)
    return pme, rho, charges


def test_appendix_b_pm_mass_deposition(benchmark, print_header):
    pm, rho, masses = benchmark.pedantic(run_pm_deposition, rounds=1,
                                         iterations=1)
    total = rho.sum() * np.prod(pm.cell_size)
    print_header("Appendix B: PM mass deposition (N-body gravity substrate)")
    print(f"particles deposited: {masses.size}")
    print(f"deposited mass / particle mass sum: {total / masses.sum():.12f}")
    benchmark.extra_info["mass_conservation"] = total / masses.sum()
    np.testing.assert_allclose(total, masses.sum(), rtol=1e-12)


def test_appendix_b_pme_charge_assignment(benchmark, print_header):
    pme, rho, charges = benchmark.pedantic(run_pme_assignment, rounds=1,
                                           iterations=1)
    total = pme.total_mesh_charge(rho)
    energy = pme.reciprocal_energy(rho)
    print_header("Appendix B: PME charge assignment (molecular dynamics substrate)")
    print(f"atoms assigned: {charges.size}")
    print(f"net mesh charge [C]: {total:.3e} (input {charges.sum():.3e})")
    print(f"reciprocal-space Ewald energy [J]: {energy:.3e}")
    benchmark.extra_info["reciprocal_energy"] = energy
    np.testing.assert_allclose(total, charges.sum(), atol=1e-22)
    assert energy >= 0.0

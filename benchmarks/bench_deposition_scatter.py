"""Deposition/gather scatter engine microbenchmark: ``np.add.at`` vs flat-index.

Times the historical triple-loop ``np.add.at`` formulation (kept here as
the oracle, verbatim from the pre-stencil kernels) against the flat-index
``np.bincount`` engine of :mod:`repro.pic.stencil`, per shape order and
per tile occupancy, for both directions of the stencil:

* **scatter** — three-component current deposition of one staged tile,
* **gather** — six-component field interpolation for one tile.

It also times the full deposition stage once per registered kernel tier
(``oracle`` vs the optional numba ``fused`` tier; unavailable tiers
report ``null`` columns), runs the uniform-plasma workload end to end,
and records the wall-clock of the ``field_gather_push`` and
``current_deposition`` stages through the new engine.

The perf trajectory JSON (``BENCH_deposition_scatter.json``, override
with ``$REPRO_BENCH_OUTPUT``) is a *history*: each run appends one
record to the ``history`` list rather than overwriting earlier
environments' datapoints.  A legacy single-record file is wrapped as
the first history entry on the next append.

Run standalone:  PYTHONPATH=src python benchmarks/bench_deposition_scatter.py
Or via pytest:   python -m pytest benchmarks/bench_deposition_scatter.py -s

The CI perf-smoke job asserts the flat-index scatter beats the
``np.add.at`` oracle by >=2x on CIC deposition (the engine's weakest
case; QSP gains are far larger) and, when numba is installed, that the
fused tier beats the oracle tier by >=1.5x on CIC deposition.  The
JSON is uploaded as an artifact.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np

from repro.backend import BackendConfig, kernel_registry, use_backend
from repro.config import GridConfig
from repro.pic.deposition.base import prepare_tile_data, scatter_tile_currents
from repro.pic.gather import gather_fields_for_tile
from repro.pic.grid import Grid
from repro.pic.shapes import shape_factors, shape_support
from repro.workloads.uniform import UniformPlasmaWorkload

#: one 8x8x8 tile, as in the kernel-study benchmarks (Table 4 scale)
BENCH_N_CELL = (8, 8, 8)
#: tile occupancies of the Figure 8 PPC scan (low / paper default)
PPC_POINTS = (8, 64)
#: shape orders: CIC, TSC, QSP
ORDERS = (1, 2, 3)
#: timing repetitions; the minimum rejects transient load
REPS = 5

#: CI gate: flat-index scatter must beat the np.add.at oracle on CIC
CIC_SCATTER_TARGET = 2.0

#: CI gate (numba leg only): fused tier must beat the oracle tier on
#: CIC deposition, the shallowest stencil and hence the weakest case
FUSED_CIC_DEPOSIT_TARGET = 1.5


# ---------------------------------------------------------------------------
# the historical np.add.at formulations (oracle, pre-stencil code verbatim)
# ---------------------------------------------------------------------------
def addat_scatter_currents(grid: Grid, data) -> None:
    """The pre-stencil ``scatter_tile_currents``: 3*S^3 np.add.at calls."""
    support = data.support
    jx, jy, jz = grid.current_arrays()
    for i in range(support):
        gx = grid.wrap_node_index(data.base_x + i, axis=0)
        for j in range(support):
            gy = grid.wrap_node_index(data.base_y + j, axis=1)
            wij = data.wx[:, i] * data.wy[:, j]
            for k in range(support):
                gz = grid.wrap_node_index(data.base_z + k, axis=2)
                w = wij * data.wz[:, k]
                np.add.at(jx, (gx, gy, gz), data.wqx * w)
                np.add.at(jy, (gx, gy, gz), data.wqy * w)
                np.add.at(jz, (gx, gy, gz), data.wqz * w)


def addat_gather_six(grid: Grid, tile, order: int) -> List[np.ndarray]:
    """The pre-stencil six-component gather: shape factors recomputed 6x."""
    out = []
    support = shape_support(order)
    for field in (grid.ex, grid.ey, grid.ez, grid.bx, grid.by, grid.bz):
        xi, yi, zi = grid.normalized_position(tile.x, tile.y, tile.z)
        bx, wx = shape_factors(xi, order)
        by, wy = shape_factors(yi, order)
        bz, wz = shape_factors(zi, order)
        result = np.zeros_like(np.asarray(tile.x, dtype=np.float64))
        for i in range(support):
            gx = grid.wrap_node_index(bx + i, axis=0)
            for j in range(support):
                gy = grid.wrap_node_index(by + j, axis=1)
                wij = wx[:, i] * wy[:, j]
                for k in range(support):
                    gz = grid.wrap_node_index(bz + k, axis=2)
                    result += wij * wz[:, k] * field[gx, gy, gz]
        out.append(result)
    return out


# ---------------------------------------------------------------------------
# measurement harness
# ---------------------------------------------------------------------------
def _best_of(func, reps: int = REPS) -> float:
    func()  # warm-up (allocators, table caches)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _make_plasma(ppc: int, seed: int = 12):
    """One-tile uniform plasma with random thermal momenta."""
    from repro.config import SpeciesConfig
    from repro.pic.particles import ParticleContainer
    from repro.pic.plasma import load_uniform_plasma

    axis_ppc = max(1, round(ppc ** (1.0 / 3.0)))
    config = GridConfig(n_cell=BENCH_N_CELL, hi=(8.0e-6,) * 3,
                        tile_size=BENCH_N_CELL)
    grid = Grid(config)
    species = SpeciesConfig(ppc=(axis_ppc,) * 3)
    container = ParticleContainer(config, species)
    rng = np.random.default_rng(seed)
    load_uniform_plasma(grid, container, species, rng)
    for tile in container.iter_tiles():
        if tile.num_particles:
            tile.ux = rng.normal(0.0, 3.0e6, tile.num_particles)
            tile.uy = rng.normal(0.0, 3.0e6, tile.num_particles)
            tile.uz = rng.normal(0.0, 3.0e6, tile.num_particles)
    return grid, container


def _bench_point(order: int, ppc: int) -> Dict[str, float]:
    """Old-vs-new scatter and gather timings for one (order, ppc) cell."""
    grid, container = _make_plasma(ppc)
    tile = container.nonempty_tiles()[0]
    rng = np.random.default_rng(0)
    for name in ("ex", "ey", "ez", "bx", "by", "bz"):
        getattr(grid, name)[...] = rng.normal(size=grid.shape)

    # the scatter primitive itself: particle staging (identical in both
    # paths) excluded; the flat path re-derives its stencil every rep,
    # exactly as a fresh per-step tile staging would
    staged = prepare_tile_data(grid, tile, container.charge, order)

    def old_scatter():
        grid.zero_currents()
        addat_scatter_currents(grid, staged)

    def new_scatter():
        staged._stencil = None  # fresh stencil per rep, as per step
        grid.zero_currents()
        scatter_tile_currents(grid, staged)

    # the full deposition stage: staging + scatter
    def old_deposit():
        data = prepare_tile_data(grid, tile, container.charge, order)
        grid.zero_currents()
        addat_scatter_currents(grid, data)

    def new_deposit():
        data = prepare_tile_data(grid, tile, container.charge, order)
        grid.zero_currents()
        scatter_tile_currents(grid, data)

    old_s = _best_of(old_scatter)
    new_s = _best_of(new_scatter)
    old_d = _best_of(old_deposit)
    new_d = _best_of(new_deposit)
    old_g = _best_of(lambda: addat_gather_six(grid, tile, order))
    new_g = _best_of(lambda: gather_fields_for_tile(grid, tile, order))

    # parity guard: the benchmark only counts if both paths agree
    data = prepare_tile_data(grid, tile, container.charge, order)
    grid.zero_currents()
    addat_scatter_currents(grid, data)
    ref = grid.jx.copy()
    grid.zero_currents()
    scatter_tile_currents(
        grid, prepare_tile_data(grid, tile, container.charge, order))
    scale = float(np.abs(ref).max()) or 1.0
    rel_err = float(np.abs(grid.jx - ref).max()) / scale
    assert rel_err < 1e-12, f"scatter engine diverged from oracle: {rel_err}"

    return {
        "order": order,
        "ppc": ppc,
        "num_particles": tile.num_particles,
        "scatter_addat_ms": old_s * 1e3,
        "scatter_flat_ms": new_s * 1e3,
        "scatter_speedup": old_s / new_s,
        "deposit_addat_ms": old_d * 1e3,
        "deposit_flat_ms": new_d * 1e3,
        "deposit_speedup": old_d / new_d,
        "gather_addat_ms": old_g * 1e3,
        "gather_flat_ms": new_g * 1e3,
        "gather_speedup": old_g / new_g,
        "combined_speedup": (old_d + old_g) / (new_d + new_g),
    }


def _tier_bench_point(order: int, ppc: int) -> Dict[str, object]:
    """Full-deposit timing per registered kernel tier for one cell.

    Unavailable tiers (e.g. ``fused`` without numba) get ``null``
    columns so the JSON schema is identical on every environment.  All
    available tiers are also checked bitwise against the oracle tier:
    a tier that diverges is a registry bug, not a benchmark datapoint.
    """
    grid, container = _make_plasma(ppc)
    tile = container.nonempty_tiles()[0]
    available = kernel_registry.available_tier_names()
    point: Dict[str, object] = {
        "order": order,
        "ppc": ppc,
        "num_particles": tile.num_particles,
    }
    currents: Dict[str, tuple] = {}
    for tier in kernel_registry.tier_names():
        if tier not in available:
            point[f"deposit_{tier}_ms"] = None
            continue
        with use_backend(BackendConfig(kernel_tier=tier)):
            def deposit():
                data = prepare_tile_data(grid, tile, container.charge, order)
                grid.zero_currents()
                scatter_tile_currents(grid, data)

            point[f"deposit_{tier}_ms"] = _best_of(deposit) * 1e3
            deposit()
            currents[tier] = (grid.jx.copy(), grid.jy.copy(), grid.jz.copy())
    for tier, arrays in currents.items():
        for ref, got in zip(currents["oracle"], arrays):
            assert np.array_equal(ref, got), (
                f"kernel tier {tier!r} diverged bitwise from the oracle "
                f"tier at order {order}"
            )
    oracle_ms = point["deposit_oracle_ms"]
    fused_ms = point.get("deposit_fused_ms")
    point["fused_deposit_speedup"] = (
        oracle_ms / fused_ms if fused_ms else None)
    return point


def _uniform_stage_seconds(order: int, ppc: int = 64, steps: int = 3
                           ) -> Dict[str, float]:
    """field_gather_push / current_deposition wall seconds per step through
    the new engine, on the uniform workload (the Figure 1 measurement)."""
    workload = UniformPlasmaWorkload(n_cell=BENCH_N_CELL,
                                     tile_size=BENCH_N_CELL, ppc=ppc,
                                     shape_order=order, max_steps=steps + 1)
    simulation = workload.build_simulation()
    try:
        simulation.run(steps=1)  # warm-up step
        simulation.breakdown.reset()
        simulation.run(steps=steps)
        seconds = dict(simulation.breakdown.seconds)
        return {
            "order": order,
            "ppc": ppc,
            "steps": steps,
            "field_gather_push_s_per_step":
                seconds.get("field_gather_push", 0.0) / steps,
            "current_deposition_s_per_step":
                seconds.get("current_deposition", 0.0) / steps,
        }
    finally:
        simulation.shutdown()


def output_path() -> str:
    """Trajectory JSON location (repo root by default)."""
    default = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_deposition_scatter.json")
    return os.environ.get("REPRO_BENCH_OUTPUT", default)


def run_benchmark() -> Dict[str, object]:
    points = [_bench_point(order, ppc) for order in ORDERS
              for ppc in PPC_POINTS]
    tier_points = [_tier_bench_point(order, ppc) for order in ORDERS
                   for ppc in PPC_POINTS]
    stages = [_uniform_stage_seconds(order) for order in (1, 3)]
    report = {
        "benchmark": "deposition_scatter",
        "n_cell": list(BENCH_N_CELL),
        "reps": REPS,
        "points": points,
        "kernel_tiers": {
            "registered": list(kernel_registry.tier_names()),
            "available": list(kernel_registry.available_tier_names()),
            "points": tier_points,
        },
        "uniform_stage_seconds": stages,
    }
    return report


def format_report(report: Dict[str, object]) -> str:
    lines = [f"{'order':>5s} {'ppc':>5s} {'scatter':>8s} {'deposit':>8s} "
             f"{'gather':>8s} {'combined':>9s}   (speedup, np.add.at -> flat)"]
    for p in report["points"]:
        lines.append(
            f"{p['order']:>5d} {p['ppc']:>5d} "
            f"{p['scatter_speedup']:>7.1f}x {p['deposit_speedup']:>7.1f}x "
            f"{p['gather_speedup']:>7.1f}x {p['combined_speedup']:>8.1f}x"
        )
    tiers = report["kernel_tiers"]
    lines.append("")
    lines.append(f"kernel tiers available: {', '.join(tiers['available'])}")
    lines.append(f"{'order':>5s} {'ppc':>5s} " + " ".join(
        f"{'deposit/' + t:>14s}" for t in tiers["registered"])
        + f" {'fused vs oracle':>16s}")
    for p in tiers["points"]:
        cols = []
        for t in tiers["registered"]:
            ms = p[f"deposit_{t}_ms"]
            cols.append(f"{ms:>11.2f} ms" if ms is not None else
                        f"{'n/a':>14s}")
        speedup = p["fused_deposit_speedup"]
        tail = f"{speedup:>15.1f}x" if speedup is not None else f"{'n/a':>16s}"
        lines.append(f"{p['order']:>5d} {p['ppc']:>5d} "
                     + " ".join(cols) + f" {tail}")
    lines.append("")
    for s in report["uniform_stage_seconds"]:
        lines.append(
            f"uniform order {s['order']} (PPC={s['ppc']}): "
            f"gather+push {1e3 * s['field_gather_push_s_per_step']:.1f} ms/step, "
            f"deposition {1e3 * s['current_deposition_s_per_step']:.1f} ms/step"
        )
    return "\n".join(lines)


def append_history(report: Dict[str, object], path: str) -> int:
    """Append ``report`` to the trajectory file's ``history`` list.

    Earlier runs are preserved: a file in the legacy single-record
    format (no ``history`` key) is wrapped as the first entry.  Returns
    the number of records the file holds after the append.
    """
    entry = dict(report)
    entry["recorded_utc"] = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    history: List[Dict[str, object]] = []
    if os.path.exists(path):
        with open(path) as handle:
            existing = json.load(handle)
        if isinstance(existing, dict) and "history" in existing:
            history = list(existing["history"])
        elif existing:
            history = [existing]
    history.append(entry)
    payload = {"benchmark": "deposition_scatter", "history": history}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(history)


def main() -> None:
    report = run_benchmark()
    print(format_report(report))

    path = output_path()
    count = append_history(report, path)
    print(f"\ntimings appended to {path} (record {count} of the history)")

    cic = [p for p in report["points"]
           if p["order"] == 1 and p["ppc"] == max(PPC_POINTS)][0]
    assert cic["scatter_speedup"] >= CIC_SCATTER_TARGET, (
        f"flat-index CIC scatter only {cic['scatter_speedup']:.2f}x faster "
        f"than the np.add.at oracle (target >={CIC_SCATTER_TARGET}x)"
    )
    qsp = [p for p in report["points"]
           if p["order"] == 3 and p["ppc"] == max(PPC_POINTS)][0]
    print(f"CIC scatter speedup: {cic['scatter_speedup']:.1f}x "
          f"(target >={CIC_SCATTER_TARGET}x: met); "
          f"QSP gather+deposit combined: {qsp['combined_speedup']:.1f}x")

    if "fused" in report["kernel_tiers"]["available"]:
        tier_cic = [p for p in report["kernel_tiers"]["points"]
                    if p["order"] == 1 and p["ppc"] == max(PPC_POINTS)][0]
        speedup = tier_cic["fused_deposit_speedup"]
        assert speedup >= FUSED_CIC_DEPOSIT_TARGET, (
            f"fused CIC deposit only {speedup:.2f}x faster than the "
            f"oracle tier (target >={FUSED_CIC_DEPOSIT_TARGET}x)"
        )
        print(f"fused CIC deposit speedup: {speedup:.1f}x "
              f"(target >={FUSED_CIC_DEPOSIT_TARGET}x: met)")
    else:
        print("fused tier unavailable here (no numba); tier columns "
              "recorded as null, speedup gate skipped")


def test_deposition_scatter(print_header):
    """Pytest entry point: the full microbenchmark plus the CI gate."""
    print_header("Deposition scatter engine: np.add.at oracle vs flat-index")
    main()


if __name__ == "__main__":
    main()

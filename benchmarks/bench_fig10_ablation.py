"""Figure 10 — ablation study of the MatrixPIC components.

The ablation compares the Baseline against the intermediate designs
(Matrix-only, Hybrid-noSort, Hybrid-GlobalSort) and the fully integrated
framework (FullOpt) across the PPC scan.  The paper's qualitative findings:

* the fully integrated FullOpt configuration delivers the best (or
  near-best) kernel time and throughput across the scan,
* Hybrid-GlobalSort is penalised by the cost of a non-incremental global
  sort every timestep,
* the MPU-based no-sort variants beat the baseline at high density but
  cannot match the sorted hybrid design.
"""

from __future__ import annotations

from repro.analysis.tables import format_series_table
from repro.baselines.configs import ABLATION_CONFIGS

from .conftest import BENCH_STEPS, campaign_sweep, uniform_workload

ABLATION_PPC = (8, 64, 128)


def run_ablation():
    kernel_time = {}
    throughput = {}
    for ppc in ABLATION_PPC:
        workload = uniform_workload(ppc=ppc)
        results = campaign_sweep(workload, ABLATION_CONFIGS,
                                 steps=BENCH_STEPS)
        kernel_time[ppc] = {name: r.timing.total for name, r in results.items()}
        throughput[ppc] = {name: r.throughput for name, r in results.items()}
    return kernel_time, throughput


def test_fig10_ablation(benchmark, print_header):
    kernel_time, throughput = benchmark.pedantic(run_ablation, rounds=1,
                                                 iterations=1)

    print_header("Figure 10: ablation study — kernel time per configuration")
    print(format_series_table(kernel_time, "modelled kernel seconds"))
    print()
    print(format_series_table(throughput, "particles per modelled second"))

    for ppc, row in kernel_time.items():
        best = min(row, key=row.get)
        benchmark.extra_info[f"best_ppc{ppc}"] = best
        print(f"best configuration at PPC={ppc}: {best}")

    high = kernel_time[128]
    # FullOpt is the best (or within 5 % of the best) design at high density
    assert high["MatrixPIC (FullOpt)"] <= 1.05 * min(high.values())
    # sorting every step costs more than sorting incrementally
    assert high["Hybrid-GlobalSort"] > high["MatrixPIC (FullOpt)"]
    # the MPU designs beat the baseline once density is high enough
    assert high["Hybrid-noSort"] < high["Baseline"]
    assert high["Matrix-only"] < high["Baseline"]
